package experiments

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/dram"
	"repro/internal/rowhammer"
)

// Fig1aResult reproduces Fig. 1(a): targeted BFA vs random bit flipping on
// an 8-bit quantized VGG-11 trained on CIFAR-100-like data.
type Fig1aResult struct {
	CleanAcc float64
	Targeted attack.Result
	Random   attack.Result
}

// Fig1a runs both attacks with direct (undefended) flip execution — the
// figure's point is that *targeted* flips collapse the model while the
// same number of random flips barely moves it.
func Fig1a(p Preset) (*Fig1aResult, error) {
	return Fig1aCtx(context.Background(), p)
}

// Fig1aCtx is Fig1a under a cancellation context, polled per training
// epoch and per BFA iteration.
func Fig1aCtx(ctx context.Context, p Preset) (*Fig1aResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	v, err := NewVictimCtx(ctx, p, ArchVGG11, 100)
	if err != nil {
		return nil, err
	}
	res := &Fig1aResult{CleanAcc: v.CleanAcc}

	// Targeted BFA.
	bcfg := attack.DefaultBFAConfig()
	bcfg.Iterations = p.AttackIters
	bcfg.CandidatesPerIter = p.Candidates
	bcfg.Stop = ctx.Err
	snap := v.QM.Snapshot()
	res.Targeted, err = attack.BFA(v.QM, v.AttackBatch, v.Eval, &attack.DirectExecutor{QM: v.QM}, bcfg)
	if err != nil {
		return nil, err
	}

	// Restore and run the random baseline on the same victim.
	v.QM.Restore(snap)
	res.Random, err = attack.RandomAttack(v.QM, v.Eval, &attack.DirectExecutor{QM: v.QM}, p.AttackIters, p.Seed+77)
	if err != nil {
		return nil, err
	}
	v.QM.Restore(snap)
	return res, nil
}

// Fig1bRow is one row of the Fig. 1(b) threshold table, annotated with a
// functional validation from the fault model: hammering exactly TRH
// activations induces no flip, TRH+1 does.
type Fig1bRow struct {
	Generation  string
	TRH         int
	FlipAtTRH   bool // must be false
	FlipPastTRH bool // must be true
}

// Fig1b returns the published thresholds and validates the fault model's
// threshold semantics at each of them on a scratch device.
func Fig1b() ([]Fig1bRow, error) {
	var rows []Fig1bRow
	for _, th := range rowhammer.PublishedThresholds() {
		atTRH, pastTRH, err := validateThreshold(th.TRH)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig1bRow{
			Generation:  th.Generation,
			TRH:         th.TRH,
			FlipAtTRH:   atTRH,
			FlipPastTRH: pastTRH,
		})
	}
	return rows, nil
}

// validateThreshold hammers a row TRH and TRH+1 times on a fresh device
// and reports whether the victim flipped in each case.
func validateThreshold(trh int) (flipAtTRH, flipPastTRH bool, err error) {
	run := func(activations int) (bool, error) {
		dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
		if err != nil {
			return false, err
		}
		hcfg := rowhammer.DefaultConfig()
		hcfg.TRH = trh
		eng, err := rowhammer.New(dev, hcfg)
		if err != nil {
			return false, err
		}
		aggressor := dram.RowAddr{Bank: 0, Row: 8}
		victim := dram.RowAddr{Bank: 0, Row: 9}
		if err := eng.RegisterTarget(victim, 0); err != nil {
			return false, err
		}
		for i := 0; i < activations; i++ {
			if _, err := dev.Activate(aggressor); err != nil {
				return false, err
			}
			if _, err := dev.Precharge(aggressor.Bank); err != nil {
				return false, err
			}
		}
		set, err := dev.PeekBit(victim, 0)
		if err != nil {
			return false, err
		}
		return set, nil
	}
	if flipAtTRH, err = run(trh); err != nil {
		return false, false, err
	}
	if flipPastTRH, err = run(trh + 1); err != nil {
		return false, false, err
	}
	if flipAtTRH || !flipPastTRH {
		return flipAtTRH, flipPastTRH,
			fmt.Errorf("experiments: threshold semantics violated at TRH=%d (at=%v past=%v)",
				trh, flipAtTRH, flipPastTRH)
	}
	return flipAtTRH, flipPastTRH, nil
}
