package experiments

import (
	"fmt"
	"strings"

	"repro/internal/controller"
	"repro/internal/defense"
	"repro/internal/dram"
	"repro/internal/rowhammer"
)

// DefenseRow is one mechanism's outcome in the single-sided campaign
// comparison: whether the victim bit flipped and what the defense spent.
type DefenseRow struct {
	Defense      string
	Flipped      bool
	Mitigations  int64
	ExtraLatency dram.Picoseconds
	Denied       int64
}

// DefenseNames lists the compared mechanisms in report order; the
// lock-table row ("DRAM-Locker") is appended by DefenseComparison.
func DefenseNames() []string {
	return []string{
		"None", "PARA", "CounterPerRow", "Graphene", "Hydra",
		"CounterTree", "TWiCE", "RRS", "SHADOW",
	}
}

// DefenseGridNames lists every row of the comparison — the baselines plus
// the DRAM-Locker controller — in report order. This is the shard axis of
// the "defense" grid job.
func DefenseGridNames() []string {
	return append(DefenseNames(), "DRAM-Locker")
}

// DefenseRowFor runs the single-sided campaign against one mechanism on a
// fresh device (one shard of the defense grid). Rows are independent, so
// any subset may run concurrently; assembling DefenseGridNames rows in
// order reproduces DefenseComparison exactly.
func DefenseRowFor(p Preset, name string) (DefenseRow, error) {
	trh := p.TRH
	activations := 10 * trh
	if name == "DRAM-Locker" {
		flipped, denied, lat, err := runDefenseLocker(trh, activations)
		if err != nil {
			return DefenseRow{}, fmt.Errorf("experiments: defense DRAM-Locker: %w", err)
		}
		return DefenseRow{
			Defense: name, Flipped: flipped,
			ExtraLatency: lat, Denied: denied,
		}, nil
	}
	flipped, st, err := runDefenseBaseline(name, trh, activations)
	if err != nil {
		return DefenseRow{}, fmt.Errorf("experiments: defense %s: %w", name, err)
	}
	return DefenseRow{
		Defense: name, Flipped: flipped,
		Mitigations: st.Mitigations, ExtraLatency: st.ExtraLatency,
		Denied: st.Denials,
	}, nil
}

// DefenseComparison runs the same single-sided RowHammer campaign —
// 10*TRH activations on one aggressor at the preset's device threshold —
// against every implemented mitigation plus the DRAM-Locker controller,
// each on a fresh device.
func DefenseComparison(p Preset) ([]DefenseRow, error) {
	var rows []DefenseRow
	for _, name := range DefenseGridNames() {
		row, err := DefenseRowFor(p, name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// defenseRig builds a fresh device + fault engine with a registered
// victim bit next to the aggressor.
func defenseRig(trh int) (*dram.Device, *rowhammer.Engine, dram.RowAddr, dram.RowAddr, error) {
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		return nil, nil, dram.RowAddr{}, dram.RowAddr{}, err
	}
	cfg := rowhammer.DefaultConfig()
	cfg.TRH = trh
	eng, err := rowhammer.New(dev, cfg)
	if err != nil {
		return nil, nil, dram.RowAddr{}, dram.RowAddr{}, err
	}
	agg := dram.RowAddr{Bank: 0, Row: 10}
	victim := dram.RowAddr{Bank: 0, Row: 11}
	if err := eng.RegisterTarget(victim, 0); err != nil {
		return nil, nil, dram.RowAddr{}, dram.RowAddr{}, err
	}
	return dev, eng, agg, victim, nil
}

// buildDefense instantiates a baseline mechanism at threshold trh.
func buildDefense(name string, dev *dram.Device, eng *rowhammer.Engine, trh int) (defense.Defense, error) {
	geom := dev.Geometry()
	switch name {
	case "None":
		return defense.NewNone(), nil
	case "PARA":
		return defense.NewPARA(eng, 0.02, 1)
	case "CounterPerRow":
		return defense.NewCounterPerRow(eng, geom, trh/2)
	case "Graphene":
		return defense.NewGraphene(eng, geom, trh, 16)
	case "Hydra":
		return defense.NewHydra(eng, geom, trh/2, 8)
	case "CounterTree":
		return defense.NewCounterTree(eng, geom, trh/2, 6)
	case "TWiCE":
		return defense.NewTWiCE(eng, geom, trh/2)
	case "RRS":
		return defense.NewRowSwap(eng, geom, trh/2, false, 2)
	case "SHADOW":
		return defense.NewShadow(eng, geom, defense.DefaultShadowConfig(trh))
	default:
		return nil, fmt.Errorf("unknown defense %q", name)
	}
}

// runDefenseBaseline drives the campaign through one baseline mechanism.
func runDefenseBaseline(name string, trh, activations int) (bool, defense.Stats, error) {
	dev, eng, agg, victim, err := defenseRig(trh)
	if err != nil {
		return false, defense.Stats{}, err
	}
	d, err := buildDefense(name, dev, eng, trh)
	if err != nil {
		return false, defense.Stats{}, err
	}
	for i := 0; i < activations; i++ {
		dec := d.OnActivate(agg, false)
		if !dec.Allow {
			continue
		}
		if _, err := dev.Activate(agg); err != nil {
			return false, defense.Stats{}, err
		}
		if _, err := dev.Precharge(agg.Bank); err != nil {
			return false, defense.Stats{}, err
		}
	}
	flipped, err := dev.PeekBit(victim, 0)
	return flipped, d.Stats(), err
}

// runDefenseLocker drives the campaign through the real DRAM-Locker
// controller with the aggressor's neighborhood locked.
func runDefenseLocker(trh, activations int) (flipped bool, denied int64, lat dram.Picoseconds, err error) {
	dev, _, agg, victim, err := defenseRig(trh)
	if err != nil {
		return false, 0, 0, err
	}
	ctl, err := controller.New(dev, controller.DefaultConfig())
	if err != nil {
		return false, 0, 0, err
	}
	if err := ctl.LockRow(agg); err != nil {
		return false, 0, 0, err
	}
	for i := 0; i < activations; i++ {
		if _, _, err := ctl.HammerAttempt(agg); err != nil {
			return false, 0, 0, err
		}
	}
	flipped, err = dev.PeekBit(victim, 0)
	st := ctl.Stats()
	return flipped, st.Denied, st.LookupLatency, err
}

// FormatDefenseComparison renders the comparison table.
func FormatDefenseComparison(p Preset, rows []DefenseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "single-sided campaign: %d activations on one aggressor, device T_RH=%d\n\n",
		10*p.TRH, p.TRH)
	fmt.Fprintf(&b, "%-16s %8s %12s %14s %10s\n", "defense", "flipped", "mitigations", "extra latency", "denied")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8v %12d %14v %10d\n",
			r.Defense, r.Flipped, r.Mitigations, r.ExtraLatency, r.Denied)
	}
	b.WriteString("\nnote: counter-based mechanisms mitigate reactively (work scales with the\n")
	b.WriteString("attack); the lock-table denies proactively at pure lookup cost.\n")
	return b.String()
}
