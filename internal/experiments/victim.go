package experiments

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/quant"
)

// Arch selects the victim architecture.
type Arch string

// Victim architectures from the paper's evaluation.
const (
	ArchResNet20 Arch = "resnet20"
	ArchVGG11    Arch = "vgg11"
)

// Victim is a trained, quantized model with its data.
type Victim struct {
	Arch     Arch
	Classes  int
	Net      *nn.Model
	QM       *quant.Model
	DS       *dataset.Dataset
	CleanAcc float64
	// AttackBatch is the attacker's sample batch (paper: 128 test images).
	AttackBatch nn.Batch
	// Eval is the accuracy-evaluation source.
	Eval nn.BatchSource
}

// datasetConfig derives the dataset generation config from a preset.
func (p Preset) datasetConfig(classes int) dataset.Config {
	return dataset.Config{
		Classes:  classes,
		Size:     p.ImageSize,
		Train:    p.TrainN,
		Test:     p.TestN,
		NoiseStd: p.NoiseStd,
		MaxShift: 1,
		ProtoRes: p.ImageSize / 4,
		Seed:     p.Seed ^ uint64(classes)*0x9e37,
	}
}

// buildNet constructs the architecture at preset scale.
func (p Preset) buildNet(arch Arch, classes int, widthMul float64) (*nn.Model, error) {
	w := p.Width * widthMul
	switch arch {
	case ArchResNet20:
		return nn.NewResNet20(classes, w, p.Seed+1), nil
	case ArchVGG11:
		return nn.NewVGG11(classes, w, p.Seed+2), nil
	default:
		return nil, fmt.Errorf("experiments: unknown arch %q", arch)
	}
}

// TrainVictim trains and quantizes a victim model. bits is the weight
// width (8 normally, 1 for the binary-weight defense); widthMul scales
// the architecture relative to the preset (Table II's capacity rows);
// reg optionally adds a training regularizer.
func TrainVictim(p Preset, arch Arch, classes, bits int, widthMul float64, reg func([]*nn.Param)) (*Victim, error) {
	return TrainVictimCtx(context.Background(), p, arch, classes, bits, widthMul, reg)
}

// TrainVictimCtx is TrainVictim under a cancellation context: training is
// the dominant cost of the model-bearing experiments, so the per-epoch
// poll is what lets Ctrl-C (or a disconnected remote scheduler) stop an
// in-flight job instead of only the queued tail.
func TrainVictimCtx(ctx context.Context, p Preset, arch Arch, classes, bits int, widthMul float64, reg func([]*nn.Param)) (*Victim, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ds, err := dataset.Generate(p.datasetConfig(classes))
	if err != nil {
		return nil, err
	}
	net, err := p.buildNet(arch, classes, widthMul)
	if err != nil {
		return nil, err
	}
	tc := nn.DefaultTrainConfig()
	tc.Epochs = p.Epochs
	tc.Seed = p.Seed + 11
	tc.Regularizer = reg
	tc.Stop = ctx.Err
	if rep := engine.ProgressFromContext(ctx); rep != nil {
		tc.OnEpoch = func(done, total int) { rep("train", done, total) }
	}
	if bits == 1 {
		// Binary-weight defenses are trained binarization-aware (STE);
		// binarizing a float-trained model post hoc destroys it.
		nn.FitProjected(net, &ds.TrainSplit, tc, nn.BinaryProjection())
	} else {
		nn.Fit(net, &ds.TrainSplit, tc)
	}
	if err := ctx.Err(); err != nil {
		return nil, err // training was aborted; a partial victim is useless
	}

	qm := quant.NewModelBits(net, bits)
	v := &Victim{
		Arch: arch, Classes: classes,
		Net: net, QM: qm, DS: ds,
	}
	evalN := p.EvalN
	if evalN > ds.TestSplit.N {
		evalN = ds.TestSplit.N
	}
	v.Eval = dataset.Subset(&ds.TestSplit, evalN)
	v.CleanAcc = nn.Evaluate(net, v.Eval, 64)

	ab := p.AttackBatch
	if ab > ds.TestSplit.N {
		ab = ds.TestSplit.N
	}
	v.AttackBatch = ds.TestSplit.Slice(0, ab)
	return v, nil
}

// NewVictim trains the standard 8-bit victim for an experiment.
func NewVictim(p Preset, arch Arch, classes int) (*Victim, error) {
	return TrainVictim(p, arch, classes, 8, 1.0, nil)
}

// NewVictimCtx is NewVictim under a cancellation context.
func NewVictimCtx(ctx context.Context, p Preset, arch Arch, classes int) (*Victim, error) {
	return TrainVictimCtx(ctx, p, arch, classes, 8, 1.0, nil)
}
