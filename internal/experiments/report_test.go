package experiments

import (
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/sim"
)

func sampleResult(iters int, flipsEvery int, acc float64) attack.Result {
	var r attack.Result
	for i := 1; i <= iters; i++ {
		if flipsEvery > 0 && i%flipsEvery == 0 {
			r.TotalFlips++
		} else {
			r.TotalDenied++
		}
		r.Records = append(r.Records, attack.IterationRecord{
			Iteration: i, Flips: r.TotalFlips, Denied: r.TotalDenied, Accuracy: acc,
		})
	}
	return r
}

func TestFormatFig1aSubsamplesRows(t *testing.T) {
	r := &Fig1aResult{
		CleanAcc: 0.9,
		Targeted: sampleResult(100, 1, 0.1),
		Random:   sampleResult(100, 1, 0.88),
	}
	out := FormatFig1a(r)
	lines := strings.Count(out, "\n")
	if lines > 20 {
		t.Fatalf("output too long (%d lines); must subsample", lines)
	}
	if !strings.Contains(out, "90.00") || !strings.Contains(out, "final:") {
		t.Fatalf("missing content:\n%s", out)
	}
}

func TestFormatFig7aMarksCompromise(t *testing.T) {
	curves, err := sim.Fig7a(sim.DefaultLatencyConfig(), 80000, 40000)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatFig7a(curves)
	if !strings.Contains(out, "*") {
		t.Fatalf("SHADOW1000 at 8e4 BFA must be marked compromised:\n%s", out)
	}
	if !strings.Contains(out, "DL") {
		t.Fatal("missing DL column")
	}
}

func TestFormatFig7bColumns(t *testing.T) {
	bars, err := sim.Fig7b(sim.DefaultDefenseTimeConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatFig7b(bars)
	for _, frag := range []string{"1000", "8000", "SHADOW", "DRAM-Locker"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("missing %q:\n%s", frag, out)
		}
	}
}

func TestFormatMonteCarloIncludesPaperColumn(t *testing.T) {
	rows := []MonteCarloRow{{Variation: 0.2, Measured: 0.094, Paper: 0.096}}
	out := FormatMonteCarlo(rows)
	if !strings.Contains(out, "9.40") || !strings.Contains(out, "9.60") {
		t.Fatalf("expected measured and paper percentages:\n%s", out)
	}
}

func TestFormatTable2AlignsRows(t *testing.T) {
	rows := []Table2Row{
		{Model: "Baseline", CleanAcc: 0.9171, PostAttackAcc: 0.109, BitFlips: 20},
		{Model: "DRAM-Locker", CleanAcc: 0.9171, PostAttackAcc: 0.9171, BitFlips: 1150, Note: "denied"},
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "91.71") || !strings.Contains(out, "1150") || !strings.Contains(out, "denied") {
		t.Fatalf("bad table:\n%s", out)
	}
}

func TestFormatFig8PairHandlesUnequalLengths(t *testing.T) {
	r := &Fig8Result{
		Arch: ArchResNet20, Classes: 10, CleanAcc: 0.95, LockedRows: 7,
		Without: sampleResult(20, 1, 0.1),
		With:    sampleResult(10, 0, 0.95),
	}
	out := FormatFig8(r)
	if !strings.Contains(out, "locked rows=7") {
		t.Fatalf("missing locked rows:\n%s", out)
	}
}
