package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
)

func TestRegisterJobsPopulatesRegistry(t *testing.T) {
	reg := engine.NewRegistry()
	if err := RegisterJobs(reg, Tiny()); err != nil {
		t.Fatal(err)
	}
	if err := RegisterJobs(reg, Small()); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, n := range reg.Names() {
		names[n] = true
	}
	for _, preset := range []string{"tiny", "small"} {
		for _, exp := range JobNames() {
			if !names[preset+"/"+exp] {
				t.Fatalf("missing job %s/%s", preset, exp)
			}
		}
	}
	if reg.Len() != 2*len(JobNames()) {
		t.Fatalf("len = %d", reg.Len())
	}
	// Re-registering the same preset collides on names.
	if err := RegisterJobs(reg, Tiny()); err == nil {
		t.Fatal("duplicate registration must fail")
	}
}

// TestBuildRegistrySharedByCLIAndDaemon: the shared constructor resolves
// the same preset list to the same job set — names, shard layouts and
// cache keys — which is what lets a daemon validate a scheduler's tasks.
func TestBuildRegistrySharedByCLIAndDaemon(t *testing.T) {
	a, err := BuildRegistry([]string{"tiny", "small"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildRegistry([]string{"tiny", "small", "tiny"}) // dupes ignored
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || a.Len() != 2*len(JobNames()) {
		t.Fatalf("lens: %d vs %d", a.Len(), b.Len())
	}
	for _, name := range a.Names() {
		ja, _ := a.Get(name)
		jb, ok := b.Get(name)
		if !ok {
			t.Fatalf("job %s missing from second registry", name)
		}
		if ja.Key != jb.Key {
			t.Fatalf("%s: cache keys diverge: %q vs %q", name, ja.Key, jb.Key)
		}
		if len(ja.Shards) != len(jb.Shards) {
			t.Fatalf("%s: shard counts diverge: %d vs %d", name, len(ja.Shards), len(jb.Shards))
		}
	}
	if _, err := BuildRegistry(nil); err == nil {
		t.Fatal("empty preset list must fail")
	}
	if _, err := BuildRegistry([]string{"huge"}); err == nil {
		t.Fatal("unknown preset must fail")
	}
}

func TestSplitList(t *testing.T) {
	got := SplitList(" tiny, ,small,,paper ")
	if fmt.Sprint(got) != fmt.Sprint([]string{"tiny", "small", "paper"}) {
		t.Fatalf("got %v", got)
	}
	if SplitList("") != nil {
		t.Fatal("empty input must yield nil")
	}
}

func TestJobTitlesCoverEveryJob(t *testing.T) {
	for _, exp := range JobNames() {
		if jobTitles[exp] == "" {
			t.Fatalf("no title for %q", exp)
		}
	}
}

func TestPresetHash(t *testing.T) {
	if Tiny().Hash() != Tiny().Hash() {
		t.Fatal("hash must be stable")
	}
	if Tiny().Hash() == Small().Hash() {
		t.Fatal("different presets must hash differently")
	}
	p := Tiny()
	p.TRH++
	if p.Hash() == Tiny().Hash() {
		t.Fatal("changing a knob must change the hash")
	}
}

func TestDefenseComparisonTiny(t *testing.T) {
	p := Tiny()
	rows, err := DefenseComparison(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DefenseNames())+1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Defense != "None" || !rows[0].Flipped {
		t.Fatalf("undefended campaign must flip the victim: %+v", rows[0])
	}
	last := rows[len(rows)-1]
	if last.Defense != "DRAM-Locker" || last.Flipped {
		t.Fatalf("DRAM-Locker must hold: %+v", last)
	}
	if last.Denied == 0 {
		t.Fatal("DRAM-Locker denied nothing")
	}
	out := FormatDefenseComparison(p, rows)
	for _, frag := range []string{"DRAM-Locker", "SHADOW", "flipped", "denied"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

// TestEngineMatchesSerialExecution is the parallel-correctness check: the
// cheap model-free jobs run through the engine with one worker and with
// many, and both reports must render identically (modulo timing).
func TestEngineMatchesSerialExecution(t *testing.T) {
	filter := []string{"*/mc", "*/table1", "*/fig7a", "*/fig7b", "*/defense"}
	run := func(workers int) string {
		reg := engine.NewRegistry()
		if err := RegisterJobs(reg, Tiny()); err != nil {
			t.Fatal(err)
		}
		rep, err := engine.Run(reg, engine.Options{Workers: workers, Filter: filter})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, r := range rep.Results {
			b.WriteString(r.Name)
			b.WriteByte('\n')
			b.WriteString(r.Text)
		}
		return b.String()
	}
	serial := run(1)
	parallel := run(0) // NumCPU
	if serial != parallel {
		t.Fatalf("parallel output diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestPresetFreeJobsShareCache: experiments that ignore the preset carry
// preset-free cache keys, so a cached multi-preset run computes each once.
func TestPresetFreeJobsShareCache(t *testing.T) {
	reg := engine.NewRegistry()
	if err := RegisterJobs(reg, Tiny()); err != nil {
		t.Fatal(err)
	}
	if err := RegisterJobs(reg, Small()); err != nil {
		t.Fatal(err)
	}
	rep, err := engine.Run(reg, engine.Options{
		Workers: 1, // serial, so the second preset's job sees the first's result
		Filter:  []string{"*/table1", "*/fig7b"},
		Cache:   engine.NewCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	byName := map[string]engine.Result{}
	for _, r := range rep.Results {
		byName[r.Name] = r
	}
	for _, exp := range []string{"table1", "fig7b"} {
		first, second := byName["tiny/"+exp], byName["small/"+exp]
		if first.Cached {
			t.Fatalf("%s: first run must compute", first.Name)
		}
		if !second.Cached {
			t.Fatalf("%s: second preset must replay the cached result", second.Name)
		}
		if first.Text != second.Text {
			t.Fatalf("%s: cached replay diverged", exp)
		}
	}
	// Preset-dependent jobs must NOT share keys across presets.
	if Tiny().Hash() == Small().Hash() {
		t.Fatal("preset hashes collide")
	}
}

// TestShardedGridsMatchSerialMonoliths is the sharding acceptance check:
// every grid experiment run through the engine must render byte-identical
// to the pre-shard serial code path (the direct monolithic calls), at a
// parallel worker count.
func TestShardedGridsMatchSerialMonoliths(t *testing.T) {
	p := Tiny()

	mc, err := MonteCarlo(p)
	if err != nil {
		t.Fatal(err)
	}
	fig7a, err := Fig7aData()
	if err != nil {
		t.Fatal(err)
	}
	fig7b, err := Fig7bData()
	if err != nil {
		t.Fatal(err)
	}
	defense, err := DefenseComparison(p)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"tiny/mc":      FormatMonteCarlo(mc),
		"tiny/table1":  FormatTable1(Table1()),
		"tiny/fig7a":   FormatFig7a(fig7a),
		"tiny/fig7b":   FormatFig7b(fig7b),
		"tiny/defense": FormatDefenseComparison(p, defense),
	}

	reg := engine.NewRegistry()
	if err := RegisterJobs(reg, p); err != nil {
		t.Fatal(err)
	}
	rep, err := engine.Run(reg, engine.Options{
		Workers: 8,
		Filter:  []string{"*/mc", "*/table1", "*/fig7a", "*/fig7b", "*/defense"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if want[r.Name] == "" {
			t.Fatalf("unexpected result %s", r.Name)
		}
		if r.Text != want[r.Name] {
			t.Errorf("%s: sharded output diverged from serial monolith:\n--- sharded ---\n%s\n--- serial ---\n%s",
				r.Name, r.Text, want[r.Name])
		}
	}
}

// TestGridJobsAreSharded pins the grid structure: the sharded experiments
// must expose one shard per curve / grid point / table row.
func TestGridJobsAreSharded(t *testing.T) {
	reg := engine.NewRegistry()
	if err := RegisterJobs(reg, Tiny()); err != nil {
		t.Fatal(err)
	}
	wantShards := map[string]int{
		"tiny/mc":      3,  // variation points
		"tiny/table1":  10, // frameworks
		"tiny/fig7a":   5,  // 4 SHADOW curves + DRAM-Locker
		"tiny/fig7b":   4,  // thresholds
		"tiny/defense": 10, // 9 baselines + DRAM-Locker
		"tiny/table2":  7,  // defended models
	}
	for _, j := range reg.Jobs() {
		if n, ok := wantShards[j.Name]; ok {
			if len(j.Shards) != n {
				t.Errorf("%s: %d shards, want %d", j.Name, len(j.Shards), n)
			}
		} else if len(j.Shards) != 0 {
			t.Errorf("%s: unexpectedly sharded (%d shards)", j.Name, len(j.Shards))
		}
	}
}

// TestWarmDiskCacheServesEveryShard is the persistence acceptance check:
// a second run over a fresh cache opened on the same directory — a new
// process, effectively — must replay every job from disk, byte-identical,
// with 100% cache hits.
func TestWarmDiskCacheServesEveryShard(t *testing.T) {
	dir := t.TempDir()
	filter := []string{"*/mc", "*/table1", "*/fig7a", "*/fig7b", "*/defense"}
	pass := func(requireAllCached bool) *engine.Report {
		t.Helper()
		cache, err := engine.OpenDiskCache(dir, CacheVersion)
		if err != nil {
			t.Fatal(err)
		}
		defer cache.Close()
		reg := engine.NewRegistry()
		if err := RegisterJobs(reg, Tiny()); err != nil {
			t.Fatal(err)
		}
		rep, err := engine.Run(reg, engine.Options{Workers: 4, Filter: filter, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		if requireAllCached && rep.CachedCount() != len(rep.Results) {
			t.Fatalf("warm run served %d of %d jobs from cache", rep.CachedCount(), len(rep.Results))
		}
		return rep
	}
	cold := pass(false)
	if cold.CachedCount() != 0 {
		t.Fatalf("cold run claims %d cached jobs", cold.CachedCount())
	}
	warm := pass(true)
	for i, r := range warm.Results {
		if r.Text != cold.Results[i].Text {
			t.Errorf("%s: warm replay diverged:\n--- warm ---\n%s\n--- cold ---\n%s",
				r.Name, r.Text, cold.Results[i].Text)
		}
	}
}

// TestJobErrorSurfacesInReport wires a preset that cannot train (zero
// test split would be caught earlier, so use an unknown-arch shim) — here
// we simply check that a failing job run through the experiments registry
// shape reports rather than aborts the sibling jobs.
func TestJobErrorSurfacesInReport(t *testing.T) {
	reg := engine.NewRegistry()
	if err := RegisterJobs(reg, Tiny()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(engine.Job{
		Name: "tiny/broken",
		Run: func(engine.Context) (engine.Output, error) {
			return engine.Output{}, errTestBroken
		},
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := engine.Run(reg, engine.Options{Filter: []string{"tiny/table1", "tiny/broken"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 1 {
		t.Fatalf("failed = %d", rep.Failed())
	}
	if rep.Results[0].Failed() {
		t.Fatalf("table1 must succeed: %+v", rep.Results[0])
	}
	if !strings.Contains(rep.Err().Error(), "tiny/broken") {
		t.Fatalf("joined error: %v", rep.Err())
	}
}

var errTestBroken = errBroken{}

type errBroken struct{}

func (errBroken) Error() string { return "synthetic failure" }
