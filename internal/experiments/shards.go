// Sharded parameter grids: the Fig. 7 threshold sweep, the defense
// comparison and the table generators run as engine.ShardedJobs — one
// shard per curve / grid point / table row — instead of monoliths. Shards
// schedule independently on the engine worker pool and cache
// individually, so a warm run replays per point and a parameter change
// recomputes only the affected shards. Every merge assembles shard
// payloads in shard order through one JSON round-trip (engine.DecodeData),
// which keeps the report byte-identical to the serial monolith at any
// worker count and across cold/warm runs.
package experiments

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/overhead"
	"repro/internal/sim"
)

// mergeRows builds the deterministic merge shared by every grid job:
// decode one payload per shard, assemble the slice in shard order, format.
func mergeRows[T any](format func([]T) string) func(engine.Context, []engine.Output) (engine.Output, error) {
	return func(_ engine.Context, outs []engine.Output) (engine.Output, error) {
		rows := make([]T, len(outs))
		for i, o := range outs {
			if err := engine.DecodeData(o.Data, &rows[i]); err != nil {
				return engine.Output{}, fmt.Errorf("shard %d: %w", i, err)
			}
		}
		return engine.Output{Text: format(rows), Data: rows}, nil
	}
}

// payloadShard wraps a typed shard computation into an engine.Shard. The
// engine.Context is passed through so shard bodies can poll cancellation
// (the model-training table2 rows do; the cheap grid points ignore it).
func payloadShard[T any](name string, run func(engine.Context) (T, error)) engine.Shard {
	return engine.Shard{
		Name: name,
		Run: func(ec engine.Context) (engine.Output, error) {
			v, err := run(ec)
			if err != nil {
				return engine.Output{}, err
			}
			return engine.Output{Data: v}, nil
		},
	}
}

// mcJob shards the §IV.D Monte-Carlo over the process-variation grid.
func mcJob(p Preset) engine.Job {
	var shards []engine.Shard
	for i, v := range circuit.PaperVariations() {
		i := i
		shards = append(shards, payloadShard(
			fmt.Sprintf("var=%g", v),
			func(engine.Context) (MonteCarloRow, error) { return MonteCarloRowFor(p, i) },
		))
	}
	return engine.Job{Shards: shards, Merge: mergeRows(FormatMonteCarlo)}
}

// table1Job shards Table I over the compared frameworks.
func table1Job() engine.Job {
	cfg := overhead.DefaultConfig()
	var shards []engine.Shard
	for _, name := range overhead.Table1Frameworks() {
		name := name
		shards = append(shards, payloadShard(
			name,
			func(engine.Context) (overhead.Report, error) { return overhead.Table1Report(cfg, name) },
		))
	}
	return engine.Job{Shards: shards, Merge: mergeRows(FormatTable1)}
}

// fig7aJob shards the Fig. 7(a) threshold sweep per curve: one SHADOW
// curve per device threshold plus the DRAM-Locker curve.
func fig7aJob() engine.Job {
	cfg := sim.DefaultLatencyConfig()
	var shards []engine.Shard
	for _, trh := range sim.PaperThresholds() {
		trh := trh
		shards = append(shards, payloadShard(
			fmt.Sprintf("shadow-trh=%d", trh),
			func(engine.Context) (sim.Fig7aCurve, error) { return sim.ShadowCurve(cfg, trh, fig7aMaxBFA, fig7aStep) },
		))
	}
	shards = append(shards, payloadShard(
		"locker",
		func(engine.Context) (sim.Fig7aCurve, error) { return sim.LockerCurve(cfg, fig7aMaxBFA, fig7aStep) },
	))
	return engine.Job{Shards: shards, Merge: mergeRows(FormatFig7a)}
}

// fig7bJob shards the Fig. 7(b) defense-time bars per device threshold.
func fig7bJob() engine.Job {
	cfg := sim.DefaultDefenseTimeConfig()
	var shards []engine.Shard
	for _, trh := range sim.PaperThresholds() {
		trh := trh
		shards = append(shards, payloadShard(
			fmt.Sprintf("trh=%d", trh),
			func(engine.Context) (sim.Fig7bBar, error) { return sim.Fig7bBarAt(cfg, trh) },
		))
	}
	return engine.Job{Shards: shards, Merge: mergeRows(FormatFig7b)}
}

// defenseJob shards the RowHammer mitigation comparison per mechanism.
func defenseJob(p Preset) engine.Job {
	var shards []engine.Shard
	for _, name := range DefenseGridNames() {
		name := name
		shards = append(shards, payloadShard(
			name,
			func(engine.Context) (DefenseRow, error) { return DefenseRowFor(p, name) },
		))
	}
	merge := func(rows []DefenseRow) string { return FormatDefenseComparison(p, rows) }
	return engine.Job{Shards: shards, Merge: mergeRows(merge)}
}

// table2Job shards the software-defense comparison per defended model.
// Each shard trains its own victim, so the heavy Table II rows spread
// across the pool instead of serialising in one job.
func table2Job(p Preset) engine.Job {
	cfg := DefaultTable2Config(p)
	var shards []engine.Shard
	for _, m := range Table2Models() {
		m := m
		shards = append(shards, payloadShard(
			m.ID,
			func(ec engine.Context) (Table2Row, error) { return m.Run(ec.Ctx, p, cfg) },
		))
	}
	return engine.Job{Shards: shards, Merge: mergeRows(FormatTable2)}
}
