package experiments

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/nn"
	"repro/internal/quant"
)

// Table2Row is one row of the software-defense comparison (Table II):
// clean accuracy, post-attack accuracy, and the bit-flip count the
// attacker needed (or spent) to reach the collapse threshold.
type Table2Row struct {
	Model         string
	CleanAcc      float64
	PostAttackAcc float64
	BitFlips      int
	// Note flags emulation details (see EXPERIMENTS.md).
	Note string
}

// Table2Config parameterises the comparison.
type Table2Config struct {
	// CollapseAcc is the accuracy at which the model counts as crushed
	// (paper: ~10-11% on CIFAR-10 = random guessing).
	CollapseAcc float64
	// MaxFlips bounds the attacker's budget per row.
	MaxFlips int
	// ClusteringLambda is the piece-wise clustering penalty strength.
	ClusteringLambda float64
}

// DefaultTable2Config returns collapse at random-guess accuracy with a
// generous flip budget.
func DefaultTable2Config(p Preset) Table2Config {
	return Table2Config{
		CollapseAcc:      1.5 / 10.0, // slightly above random guessing for 10 classes
		MaxFlips:         p.AttackIters,
		ClusteringLambda: 3e-3,
	}
}

// reconstructionExecutor emulates the weight-reconstruction defense (Li et
// al. DAC'20): weights are stored in a redundant transformed form, so
// after each write-back the deployment reconstructs them and large
// deviations — the catastrophic MSB jumps BFA relies on — are pulled back
// toward the original value, leaving only a small residual error. Each
// flip therefore lands but does a fraction of its intended damage, forcing
// the attacker to spend far more flips (the paper reports 79 vs the
// baseline's 20).
type reconstructionExecutor struct {
	qm *quant.Model
	// repairThreshold is the quantized-value jump that triggers repair.
	repairThreshold int
	// residual is the corruption left behind after a repair.
	residual int8
}

// TryFlip implements attack.FlipExecutor.
func (r *reconstructionExecutor) TryFlip(globalW, k int) (attack.FlipOutcome, error) {
	pi, li := r.qm.Locate(globalW)
	qp := r.qm.Params[pi]
	before := qp.Get(li)
	qp.Flip(li, k)
	after := qp.Get(li)
	delta := int(after) - int(before)
	if delta >= r.repairThreshold || delta <= -r.repairThreshold {
		// Reconstruction detects the outlier and repairs toward the
		// original, leaving a bounded residual.
		repaired := before
		if delta > 0 {
			repaired += r.residual
		} else {
			repaired -= r.residual
		}
		qp.Q[li] = repaired
		qp.Param.W.Data[li] = quant.Dequantize(repaired, qp.Scale)
	}
	return attack.FlipOutcome{Succeeded: true}, nil
}

// Table2Model is one row of the Table II grid: a stable shard id plus the
// builder that trains the defended model and attacks it to collapse.
// Every builder trains its own victim, so rows are independent and any
// subset may run concurrently.
type Table2Model struct {
	ID  string
	Run func(ctx context.Context, p Preset, cfg Table2Config) (Table2Row, error)
}

// Table2Models lists the compared defenses in paper order — the shard
// axis of the table2 grid job.
func Table2Models() []Table2Model {
	return []Table2Model{
		{"baseline", table2Baseline},
		{"clustering", table2Clustering},
		{"binary", table2Binary},
		{"capacity", table2Capacity},
		{"reconstruction", table2Reconstruction},
		{"rabnn", table2RABNN},
		{"dramlocker", table2DRAMLocker},
	}
}

// table2AttackToCollapse drives the BFA until the model collapses or the
// flip budget runs out.
func table2AttackToCollapse(ctx context.Context, p Preset, cfg Table2Config, v *Victim, exec attack.FlipExecutor) (int, float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	bcfg := attack.DefaultBFAConfig()
	bcfg.CandidatesPerIter = p.Candidates
	bcfg.Stop = ctx.Err
	return attack.BFAUntilCollapse(v.QM, v.AttackBatch, v.Eval, exec, bcfg, cfg.CollapseAcc, cfg.MaxFlips)
}

// table2Baseline: undefended ResNet-20 (8-bit).
func table2Baseline(ctx context.Context, p Preset, cfg Table2Config) (Table2Row, error) {
	base, err := TrainVictimCtx(ctx, p, ArchResNet20, 10, 8, 1.0, nil)
	if err != nil {
		return Table2Row{}, err
	}
	flips, post, err := table2AttackToCollapse(ctx, p, cfg, base, &attack.DirectExecutor{QM: base.QM})
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{
		Model: "Baseline ResNet-20", CleanAcc: base.CleanAcc,
		PostAttackAcc: post, BitFlips: flips,
	}, nil
}

// table2Clustering: piece-wise clustering (He et al. CVPR'20).
func table2Clustering(ctx context.Context, p Preset, cfg Table2Config) (Table2Row, error) {
	pwc, err := TrainVictimCtx(ctx, p, ArchResNet20, 10, 8, 1.0,
		nn.PiecewiseClusteringReg(cfg.ClusteringLambda))
	if err != nil {
		return Table2Row{}, err
	}
	flips, post, err := table2AttackToCollapse(ctx, p, cfg, pwc, &attack.DirectExecutor{QM: pwc.QM})
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{
		Model: "Piece-wise Clustering", CleanAcc: pwc.CleanAcc,
		PostAttackAcc: post, BitFlips: flips,
		Note: "clustering regularizer during training",
	}, nil
}

// table2Binary: binary weights (He et al. CVPR'20).
func table2Binary(ctx context.Context, p Preset, cfg Table2Config) (Table2Row, error) {
	bin, err := TrainVictimCtx(ctx, p, ArchResNet20, 10, 1, 1.0, nil)
	if err != nil {
		return Table2Row{}, err
	}
	flips, post, err := table2AttackToCollapse(ctx, p, cfg, bin, &attack.DirectExecutor{QM: bin.QM})
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{
		Model: "Binary weight", CleanAcc: bin.CleanAcc,
		PostAttackAcc: post, BitFlips: flips,
		Note: "1-bit sign weights",
	}, nil
}

// table2Capacity: model capacity x16 (Rakin et al.): 16x parameters = 4x
// width.
func table2Capacity(ctx context.Context, p Preset, cfg Table2Config) (Table2Row, error) {
	wide, err := TrainVictimCtx(ctx, p, ArchResNet20, 10, 8, 4.0, nil)
	if err != nil {
		return Table2Row{}, err
	}
	flips, post, err := table2AttackToCollapse(ctx, p, cfg, wide, &attack.DirectExecutor{QM: wide.QM})
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{
		Model: "Model Capacity x16", CleanAcc: wide.CleanAcc,
		PostAttackAcc: post, BitFlips: flips,
		Note: "4x channel width",
	}, nil
}

// table2Reconstruction: weight reconstruction (Li et al. DAC'20):
// redundancy + repair.
func table2Reconstruction(ctx context.Context, p Preset, cfg Table2Config) (Table2Row, error) {
	rec, err := TrainVictimCtx(ctx, p, ArchResNet20, 10, 8, 1.0, nil)
	if err != nil {
		return Table2Row{}, err
	}
	flips, post, err := table2AttackToCollapse(ctx, p, cfg, rec, &reconstructionExecutor{
		qm:              rec.QM,
		repairThreshold: 64,
		residual:        8,
	})
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{
		Model: "Weight Reconstruction", CleanAcc: rec.CleanAcc,
		PostAttackAcc: post, BitFlips: flips,
		Note: "emulated as outlier repair with residual error",
	}, nil
}

// table2RABNN: RA-BNN (Rakin et al.): binary weights at doubled width.
func table2RABNN(ctx context.Context, p Preset, cfg Table2Config) (Table2Row, error) {
	rabnn, err := TrainVictimCtx(ctx, p, ArchResNet20, 10, 1, 2.0, nil)
	if err != nil {
		return Table2Row{}, err
	}
	flips, post, err := table2AttackToCollapse(ctx, p, cfg, rabnn, &attack.DirectExecutor{QM: rabnn.QM})
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{
		Model: "RA-BNN", CleanAcc: rabnn.CleanAcc,
		PostAttackAcc: post, BitFlips: flips,
		Note: "binary weights, 2x width",
	}, nil
}

// table2DRAMLocker: full stack, ideal SWAP (no process-variation errors).
func table2DRAMLocker(ctx context.Context, p Preset, cfg Table2Config) (Table2Row, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	dl, err := TrainVictimCtx(ctx, p, ArchResNet20, 10, 8, 1.0, nil)
	if err != nil {
		return Table2Row{}, err
	}
	sys, err := BuildSystem(p, dl, true, 0)
	if err != nil {
		return Table2Row{}, err
	}
	res, err := attack.BFA(dl.QM, dl.AttackBatch, dl.Eval, sys.Exec, attack.BFAConfig{
		Iterations:        cfg.MaxFlips,
		CandidatesPerIter: p.Candidates,
		AttackBatch:       p.AttackBatch,
		Seed:              p.Seed + 999,
		Stop:              ctx.Err,
	})
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{
		Model: "DRAM-Locker", CleanAcc: dl.CleanAcc,
		PostAttackAcc: res.FinalAccuracy(), BitFlips: res.TotalDenied + res.TotalFlips,
		Note: fmt.Sprintf("all %d attempts denied, %d landed", res.TotalDenied, res.TotalFlips),
	}, nil
}

// Table2 measures every defense row on ResNet-20 / CIFAR-10-like data.
// Training-based defenses run under direct flip execution (they do not
// change the memory system); DRAM-Locker runs on the full DRAM stack with
// an ideal (error-free) SWAP, the paper's Table II setting.
func Table2(p Preset, cfg Table2Config) ([]Table2Row, error) {
	var rows []Table2Row
	for _, m := range Table2Models() {
		row, err := m.Run(context.Background(), p, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
