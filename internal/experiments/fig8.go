package experiments

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memmap"
	"repro/internal/pagetable"
)

// Fig8Leak is the BFA success probability under a defended system at the
// ±20% process corner (paper §IV.D / Fig. 8: 9.6% erroneous SWAPs).
const Fig8Leak = 0.096

// DefendedSystem bundles a victim placed into a full DRAM-Locker stack.
type DefendedSystem struct {
	Sys    *core.System
	Layout *memmap.Layout
	Exec   *attack.DRAMExecutor
	// LockedRows is how many aggressor-candidate rows were locked
	// (zero when the system was built without protection).
	LockedRows int
}

// BuildSystem places the victim's weights into simulated DRAM and wires
// the attack executor. protect enables the lock-table policy; leak is the
// erroneous-SWAP exposure probability granted to the attacker.
func BuildSystem(p Preset, v *Victim, protect bool, leak float64) (*DefendedSystem, error) {
	ccfg := core.Config{
		Geometry:     p.Geometry,
		Timing:       dram.DDR4Timing(),
		Hammer:       p.hammerConfig(),
		Controller:   p.controllerConfig(),
		LockDistance: 1,
	}
	sys, err := core.NewSystem(ccfg)
	if err != nil {
		return nil, err
	}
	opts := memmap.DefaultOptions()
	opts.StartRow = 1 // odd rows hold weights; even rows are attacker space
	opts.Avoid = func(a dram.RowAddr) bool { return sys.Controller().IsReserved(a) }
	layout, err := memmap.New(v.QM, sys.Device(), opts)
	if err != nil {
		return nil, err
	}
	ds := &DefendedSystem{Sys: sys, Layout: layout}
	if protect {
		locked, err := sys.ProtectWeights(layout)
		if err != nil {
			return nil, err
		}
		ds.LockedRows = locked
	}
	exec, err := attack.NewDRAMExecutor(layout, sys.Controller(), sys.Hammer(), leak, p.Seed+101)
	if err != nil {
		return nil, err
	}
	ds.Exec = exec
	return ds, nil
}

// Fig8Result reproduces one panel of Fig. 8: accuracy-vs-iteration traces
// for the same victim attacked without and with DRAM-Locker.
type Fig8Result struct {
	Arch       Arch
	Classes    int
	CleanAcc   float64
	Without    attack.Result
	With       attack.Result
	LockedRows int
}

// Fig8 runs the full-stack BFA twice: on an unprotected system (every
// hammer lands) and on a DRAM-Locker system at the ±20% corner (denials
// except the 9.6% erroneous-SWAP leak).
func Fig8(p Preset, arch Arch, classes int) (*Fig8Result, error) {
	return Fig8Ctx(context.Background(), p, arch, classes)
}

// Fig8Ctx is Fig8 under a cancellation context, polled per training
// epoch and per attack iteration.
func Fig8Ctx(ctx context.Context, p Preset, arch Arch, classes int) (*Fig8Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	v, err := NewVictimCtx(ctx, p, arch, classes)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{Arch: arch, Classes: classes, CleanAcc: v.CleanAcc}
	snap := v.QM.Snapshot()

	bcfg := attack.DefaultBFAConfig()
	bcfg.Iterations = p.AttackIters
	bcfg.CandidatesPerIter = p.Candidates
	bcfg.Stop = ctx.Err

	// Without DRAM-Locker.
	undefended, err := BuildSystem(p, v, false, 0)
	if err != nil {
		return nil, err
	}
	res.Without, err = attack.BFA(v.QM, v.AttackBatch, v.Eval, undefended.Exec, bcfg)
	if err != nil {
		return nil, err
	}

	// Restore the victim and attack the defended system.
	v.QM.Restore(snap)
	defended, err := BuildSystem(p, v, true, Fig8Leak)
	if err != nil {
		return nil, err
	}
	res.LockedRows = defended.LockedRows
	res.With, err = attack.BFA(v.QM, v.AttackBatch, v.Eval, defended.Exec, bcfg)
	if err != nil {
		return nil, err
	}
	v.QM.Restore(snap)
	return res, nil
}

// Fig8PTAResult is the PTA variant reported in §V's text: the attacker
// corrupts page-table entries instead of weights directly.
type Fig8PTAResult struct {
	CleanAcc   float64
	Without    attack.Result
	With       attack.Result
	LockedRows int
}

// Fig8PTA runs the page-table attack against ResNet-20/CIFAR-10-like with
// and without DRAM-Locker protecting the page-table rows.
func Fig8PTA(p Preset) (*Fig8PTAResult, error) {
	return Fig8PTACtx(context.Background(), p)
}

// Fig8PTACtx is Fig8PTA under a cancellation context (polled through the
// victim training, the dominant cost).
func Fig8PTACtx(ctx context.Context, p Preset) (*Fig8PTAResult, error) {
	v, err := NewVictimCtx(ctx, p, ArchResNet20, 10)
	if err != nil {
		return nil, err
	}
	snap := v.QM.Snapshot()
	res := &Fig8PTAResult{CleanAcc: v.CleanAcc}

	run := func(protect bool, leak float64) (attack.Result, int, error) {
		v.QM.Restore(snap)
		sysb, err := BuildSystem(p, v, false, 0) // weights unprotected: PTA targets PTEs
		if err != nil {
			return attack.Result{}, 0, err
		}
		sys := sysb.Sys
		geom := sys.Device().Geometry()

		// Page-table rows live in bank 0 at even rows not used by weights;
		// give the table enough rows for one PTE per weight page plus the
		// attacker's page.
		pages := len(sysb.Layout.WeightRows()) + 8
		per := geom.RowBytes / pagetable.PTESize
		need := (pages + per - 1) / per
		var ptRows []dram.RowAddr
		for r := 2; len(ptRows) < need && r < geom.RowsPerBank(); r += 2 {
			a := dram.RowAddr{Bank: geom.Banks() - 1, Row: r}
			if sys.Controller().IsReserved(a) || sysb.Layout.IsWeightRow(a) {
				continue
			}
			ptRows = append(ptRows, a)
		}
		table, err := pagetable.New(sys.Device(), ptRows, pages)
		if err != nil {
			return attack.Result{}, 0, err
		}
		locked := 0
		if protect {
			locked, err = sys.ProtectPageTable(table)
			if err != nil {
				return attack.Result{}, 0, err
			}
		}
		pcfg := attack.DefaultPTAConfig()
		pcfg.Iterations = p.AttackIters
		pcfg.Leak = leak
		pcfg.Seed = p.Seed + 303
		pta, err := attack.NewPTA(table, sysb.Layout, sys.Controller(), sys.Hammer(), pcfg)
		if err != nil {
			return attack.Result{}, 0, err
		}
		r, err := pta.Run(v.Eval)
		return r, locked, err
	}

	// The defended run uses the nominal process corner (no leak): one
	// leaked PTA redirect overwrites an entire weight row — thousands of
	// weights — so even a sub-percent leak collapses the model and every
	// defended curve would be trivially identical to the undefended one.
	// The paper's PTA discussion (§V) reports the defended curve staying
	// flat, which corresponds to this corner; the ±20% leak accounting is
	// specific to the per-bit BFA panels of Fig. 8.
	var locked int
	if res.Without, _, err = run(false, 0); err != nil {
		return nil, fmt.Errorf("experiments: PTA undefended: %w", err)
	}
	if res.With, locked, err = run(true, 0); err != nil {
		return nil, fmt.Errorf("experiments: PTA defended: %w", err)
	}
	res.LockedRows = locked
	v.QM.Restore(snap)
	return res, nil
}
