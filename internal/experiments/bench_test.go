package experiments

import (
	"testing"

	"repro/internal/engine"
)

// benchGridFilter selects the model-free sharded grids (cheap enough for
// -benchtime=1x smoke runs).
var benchGridFilter = []string{"*/mc", "*/table1", "*/fig7a", "*/fig7b", "*/defense"}

// BenchmarkShardedGridsCold runs the model-free parameter grids through
// the engine with a fresh cache each pass.
func BenchmarkShardedGridsCold(b *testing.B) {
	reg := engine.NewRegistry()
	if err := RegisterJobs(reg, Tiny()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := engine.Run(reg, engine.Options{Filter: benchGridFilter, Cache: engine.NewCache()})
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVictimTrain measures the end-to-end victim build — dataset
// generation, training on the zero-alloc path, quantization, clean-accuracy
// eval — the cost that dominates every model-bearing experiment
// (table2, defense, fig1, fig8, perf). allocs/op tracks how much of the
// training loop still hits the allocator.
func BenchmarkVictimTrain(b *testing.B) {
	p := Tiny()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewVictim(p, ArchResNet20, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedGridsWarm measures the steady state: every grid replays
// from one shared cache (what a re-run of the paper tables costs).
func BenchmarkShardedGridsWarm(b *testing.B) {
	reg := engine.NewRegistry()
	if err := RegisterJobs(reg, Tiny()); err != nil {
		b.Fatal(err)
	}
	cache := engine.NewCache()
	if _, err := engine.Run(reg, engine.Options{Filter: benchGridFilter, Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := engine.Run(reg, engine.Options{Filter: benchGridFilter, Cache: cache})
		if err != nil {
			b.Fatal(err)
		}
		if rep.CachedCount() != len(rep.Results) {
			b.Fatalf("warm pass computed %d jobs", len(rep.Results)-rep.CachedCount())
		}
	}
}
