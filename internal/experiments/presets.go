// Package experiments drives every table and figure of the paper's
// evaluation from the substrate packages, in three sizes: Tiny (unit
// tests), Small (benchmarks and the default CLI) and Paper (closest to the
// paper's parameters; minutes of CPU).
//
// DESIGN.md §4 maps each experiment id to the modules involved;
// EXPERIMENTS.md records paper-reported vs measured values.
package experiments

import (
	"fmt"
	"hash/fnv"

	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/rowhammer"
)

// Preset bundles every scale-dependent knob.
type Preset struct {
	Name string

	// DNN / dataset scale.
	ImageSize   int
	Width       float64 // channel width multiplier for both architectures
	TrainN      int
	TestN       int
	Epochs      int
	NoiseStd    float64
	AttackIters int
	AttackBatch int
	EvalN       int // examples used for per-iteration accuracy
	Candidates  int // BFA candidates evaluated per iteration

	// Monte-Carlo scale.
	MCTrials int

	// DRAM geometry for full-stack attacks.
	Geometry dram.Geometry
	TRH      int

	// Seeds.
	Seed uint64
}

// Tiny returns the unit-test scale (sub-second experiments).
func Tiny() Preset {
	return Preset{
		Name:      "tiny",
		ImageSize: 16, Width: 0.25,
		TrainN: 240, TestN: 80, Epochs: 6, NoiseStd: 0.30,
		AttackIters: 8, AttackBatch: 16, EvalN: 80, Candidates: 3,
		MCTrials: 2000,
		// VGG-scale victims need more rows than dram.SmallGeometry()
		// offers; sparse row allocation keeps the larger geometry free.
		Geometry: mediumGeometry(),
		TRH:      50,
		Seed:     0x7e57,
	}
}

// Small returns the benchmark scale (seconds per experiment).
func Small() Preset {
	return Preset{
		Name:      "small",
		ImageSize: 16, Width: 0.25,
		TrainN: 400, TestN: 160, Epochs: 8, NoiseStd: 0.30,
		AttackIters: 40, AttackBatch: 32, EvalN: 160, Candidates: 4,
		MCTrials: 10000,
		Geometry: mediumGeometry(),
		TRH:      200,
		Seed:     0x5a11,
	}
}

// PaperScale returns the configuration closest to the paper (32x32 images,
// 100 attack iterations, 128-sample attack batches, 10k Monte-Carlo
// trials). Width stays below 1.0 to keep pure-Go training tractable; the
// substitution is recorded in DESIGN.md §2.
func PaperScale() Preset {
	return Preset{
		Name:      "paper",
		ImageSize: 32, Width: 0.25,
		TrainN: 2000, TestN: 512, Epochs: 6, NoiseStd: 0.40,
		AttackIters: 100, AttackBatch: 128, EvalN: 512, Candidates: 5,
		MCTrials: 10000,
		Geometry: mediumGeometry(),
		TRH:      1000,
		Seed:     0x9a9e5,
	}
}

// mediumGeometry holds full models while keeping row scans cheap.
func mediumGeometry() dram.Geometry {
	return dram.Geometry{
		Ranks:            1,
		BanksPerRank:     4,
		SubarraysPerBank: 16,
		RowsPerSubarray:  512,
		RowBytes:         2048,
	}
}

// Hash fingerprints every knob of the preset. The engine layer uses it as
// the result-cache key component, so changing any field — even one buried
// in the geometry — invalidates cached results computed under it.
func (p Preset) Hash() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", p)
	return fmt.Sprintf("%016x", h.Sum64())
}

// PresetNames lists the selectable presets in size order.
func PresetNames() []string {
	return []string{"tiny", "small", "paper"}
}

// PresetByName resolves "tiny", "small" or "paper".
func PresetByName(name string) (Preset, error) {
	switch name {
	case "tiny":
		return Tiny(), nil
	case "small":
		return Small(), nil
	case "paper":
		return PaperScale(), nil
	default:
		return Preset{}, fmt.Errorf("experiments: unknown preset %q (have %v)", name, PresetNames())
	}
}

// hammerConfig builds the fault model for the preset.
func (p Preset) hammerConfig() rowhammer.Config {
	cfg := rowhammer.DefaultConfig()
	cfg.TRH = p.TRH
	return cfg
}

// controllerConfig builds the DRAM-Locker controller config for the preset.
func (p Preset) controllerConfig() controller.Config {
	return controller.DefaultConfig()
}
