package remote

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/engine"
)

// testRegistry builds seed-dependent jobs — monoliths plus one sharded
// grid — so report text fingerprints where and how tasks executed.
func testRegistry(t *testing.T) *engine.Registry {
	t.Helper()
	reg := engine.NewRegistry()
	must := func(j engine.Job) {
		if err := reg.Register(j); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("mono%d", i)
		must(engine.Job{Name: name, Key: name + "@hash", Run: func(ctx engine.Context) (engine.Output, error) {
			rng := rand.New(rand.NewSource(int64(ctx.Seed)))
			return engine.Output{
				Text: fmt.Sprintf("%s -> %d", ctx.Name, rng.Int63()),
				Data: map[string]uint64{"seed": ctx.Seed},
			}, nil
		}})
	}
	var shards []engine.Shard
	for i := 0; i < 6; i++ {
		shards = append(shards, engine.Shard{
			Name: fmt.Sprintf("s%d", i),
			Run: func(ctx engine.Context) (engine.Output, error) {
				return engine.Output{Data: map[string]any{"name": ctx.Name, "seed": ctx.Seed}}, nil
			},
		})
	}
	must(engine.ShardedJob("grid", "grid job", "grid@hash", shards,
		func(_ engine.Context, outs []engine.Output) (engine.Output, error) {
			var b strings.Builder
			for _, o := range outs {
				var row struct {
					Name string `json:"name"`
					Seed uint64 `json:"seed"`
				}
				if err := engine.DecodeData(o.Data, &row); err != nil {
					return engine.Output{}, err
				}
				fmt.Fprintf(&b, "%s:%d\n", row.Name, row.Seed)
			}
			return engine.Output{Text: b.String()}, nil
		}))
	return reg
}

// reportText strips timings so reports can be compared for determinism.
func reportText(rep *engine.Report) string {
	var b strings.Builder
	for _, r := range rep.Results {
		fmt.Fprintf(&b, "%s seed=%d err=%q\n%s\n", r.Name, r.Seed, r.Err, r.Text)
	}
	return b.String()
}

func startWorker(t *testing.T, reg *engine.Registry, name string, capacity int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(reg, name, capacity))
	t.Cleanup(ts.Close)
	return ts
}

func dial(t *testing.T, opts Options, addrs ...string) *RemoteExecutor {
	t.Helper()
	re, err := Dial(context.Background(), addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return re
}

// TestRemoteReportMatchesLocal is the transport-independence guarantee:
// the same registry scheduled through a loopback worker renders the same
// report as the in-process pool, at several worker counts.
func TestRemoteReportMatchesLocal(t *testing.T) {
	ts := startWorker(t, testRegistry(t), "w1", 4)
	local, err := engine.Run(testRegistry(t), engine.Options{Workers: 1, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Err(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		re := dial(t, Options{}, ts.URL)
		rep, err := engine.Run(testRegistry(t), engine.Options{Workers: workers, BaseSeed: 5, Executor: re})
		if err != nil {
			t.Fatal(err)
		}
		if reportText(rep) != reportText(local) {
			t.Fatalf("workers=%d remote report diverged:\n%s\nvs local\n%s", workers, reportText(rep), reportText(local))
		}
	}
}

func TestDialRejectsProtocolMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"proto":"dlexec999","name":"future","capacity":1}`)
	}))
	defer ts.Close()
	if _, err := Dial(context.Background(), []string{ts.URL}, Options{}); err == nil || !strings.Contains(err.Error(), "protocol version") {
		t.Fatalf("dial must reject a future worker: %v", err)
	}
}

func TestDialRejectsUnreachableWorker(t *testing.T) {
	if _, err := Dial(context.Background(), []string{"127.0.0.1:1"}, Options{}); err == nil {
		t.Fatal("dial must fail when a worker is unreachable")
	}
}

// TestRetryWithExclusion: a worker that accepts status probes but fails
// every execution is excluded per task, and the healthy worker serves the
// whole run.
func TestRetryWithExclusion(t *testing.T) {
	good := startWorker(t, testRegistry(t), "good", 4)

	// The bad worker answers /v1/status like a healthy daemon but 500s
	// every /v1/execute.
	statusSrc := NewServer(testRegistry(t), "bad", 4)
	var badHits atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == StatusPath {
			statusSrc.ServeHTTP(w, r)
			return
		}
		badHits.Add(1)
		http.Error(w, "disk on fire", http.StatusInternalServerError)
	}))
	defer bad.Close()

	re := dial(t, Options{}, bad.URL, good.URL)
	rep, err := engine.Run(testRegistry(t), engine.Options{Workers: 2, BaseSeed: 5, Executor: re})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("run must survive a failing worker: %v", err)
	}
	if badHits.Load() == 0 {
		t.Fatal("bad worker was never tried (test proves nothing)")
	}
	local, err := engine.Run(testRegistry(t), engine.Options{Workers: 1, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if reportText(rep) != reportText(local) {
		t.Fatal("report diverged under worker failure")
	}
	// After downAfter consecutive failures the bad worker stops being
	// selected at all. Up to Workers-1 extra hits can race in before the
	// marker trips, hence the slack.
	if hits := badHits.Load(); hits > downAfter+1 {
		t.Fatalf("bad worker kept being tried after being marked down: %d hits", hits)
	}
}

// TestDownWorkerReprobedAfterBackoff: a worker down-marked after
// downAfter consecutive failures sits out the backoff, is offered one
// probe task once it elapses, and rejoins selection when the probe
// succeeds — instead of staying out for the whole run.
func TestDownWorkerReprobedAfterBackoff(t *testing.T) {
	good := startWorker(t, testRegistry(t), "good", 4)

	// The flaky worker 500s /v1/execute while failing is set and serves
	// normally otherwise.
	inner := NewServer(testRegistry(t), "flaky", 4)
	var failing atomic.Bool
	var execHits atomic.Int64
	failing.Store(true)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == ExecutePath {
			execHits.Add(1)
			if failing.Load() {
				http.Error(w, "transient outage", http.StatusInternalServerError)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	// The good worker is dialed first: on load ties the stable
	// least-loaded sort prefers it, so this order proves the elapsed
	// probe is dispatched ahead of the live fleet instead of starving
	// behind it.
	re := dial(t, Options{ReprobeAfter: time.Minute}, good.URL, flaky.URL)
	clock := time.Now()
	re.now = func() time.Time { return clock }

	run := func() *engine.Report {
		t.Helper()
		rep, err := engine.Run(testRegistry(t), engine.Options{Workers: 2, BaseSeed: 5, Executor: re})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// Run 1: the flaky worker fails its way to down-marked.
	run()
	downHits := execHits.Load()
	if downHits < downAfter {
		t.Fatalf("flaky worker hit %d times, want >= %d to trip down-marking", downHits, downAfter)
	}

	// Run 2, inside the backoff: the worker must not be probed.
	run()
	if got := execHits.Load(); got != downHits {
		t.Fatalf("down worker probed %d times during backoff", got-downHits)
	}

	// Heal the worker and advance past the backoff: the next run probes
	// it, the probe succeeds, and it serves tasks again.
	failing.Store(false)
	clock = clock.Add(2 * time.Minute)
	rep := run()
	if got := execHits.Load(); got <= downHits {
		t.Fatal("down worker never re-probed after the backoff elapsed")
	}
	for _, w := range re.workers {
		if w.name == "flaky" && w.down() {
			t.Fatal("successful probe must restore the worker")
		}
	}
	local, err := engine.Run(testRegistry(t), engine.Options{Workers: 1, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if reportText(rep) != reportText(local) {
		t.Fatal("report diverged across the re-probation cycle")
	}
}

// TestFallbackToLocal: when every worker dies after dial, tasks run on
// the fallback executor and the run still completes correctly.
func TestFallbackToLocal(t *testing.T) {
	reg := testRegistry(t)
	ts := httptest.NewServer(NewServer(reg, "doomed", 2))
	re := dial(t, Options{Fallback: engine.NewLocalExecutor(reg)}, ts.URL)
	ts.Close() // the fleet dies between dial and dispatch

	rep, err := engine.Run(reg, engine.Options{Workers: 2, BaseSeed: 5, Executor: re})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("fallback must absorb a dead fleet: %v", err)
	}
	local, err := engine.Run(testRegistry(t), engine.Options{Workers: 1, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if reportText(rep) != reportText(local) {
		t.Fatal("fallback report diverged from local")
	}
}

// TestNoFallbackSurfacesFleetFailure: without a fallback, a dead fleet
// fails the tasks with a transport-shaped error.
func TestNoFallbackSurfacesFleetFailure(t *testing.T) {
	reg := testRegistry(t)
	ts := httptest.NewServer(NewServer(reg, "doomed", 2))
	re := dial(t, Options{}, ts.URL)
	ts.Close()

	rep, err := engine.Run(reg, engine.Options{Workers: 2, Executor: re, Filter: []string{"mono0"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 1 || !strings.Contains(rep.Results[0].Err, "remote: task mono0") {
		t.Fatalf("fleet failure not surfaced: %+v", rep.Results[0])
	}
}

// TestWorkerRefusesForeignCacheKey: a worker whose registry derived a
// different cache key (different presets or code) must refuse the task;
// with a local fallback the run still completes with correct results.
func TestWorkerRefusesForeignCacheKey(t *testing.T) {
	foreign := engine.NewRegistry()
	if err := foreign.Register(engine.Job{Name: "mono0", Key: "mono0@OTHERHASH", Run: func(engine.Context) (engine.Output, error) {
		return engine.Output{Text: "poisoned"}, nil
	}}); err != nil {
		t.Fatal(err)
	}
	ts := startWorker(t, foreign, "foreign", 2)

	reg := testRegistry(t)
	re := dial(t, Options{Fallback: engine.NewLocalExecutor(reg)}, ts.URL)
	rep, err := engine.Run(reg, engine.Options{Workers: 1, BaseSeed: 5, Executor: re, Filter: []string{"mono0"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rep.Results[0].Text, "poisoned") {
		t.Fatal("foreign worker's result leaked into the report")
	}
	local, err := engine.Run(testRegistry(t), engine.Options{Workers: 1, BaseSeed: 5, Filter: []string{"mono0"}})
	if err != nil {
		t.Fatal(err)
	}
	if reportText(rep) != reportText(local) {
		t.Fatal("key-mismatch recovery diverged from local")
	}
}

// TestPerWorkerInflightLimit: the client never holds more than
// InflightPerWorker requests open against one worker, even when the
// scheduler offers more parallelism.
func TestPerWorkerInflightLimit(t *testing.T) {
	const limit = 2
	reg := engine.NewRegistry()
	for i := 0; i < 8; i++ {
		if err := reg.Register(engine.Job{Name: fmt.Sprintf("slow%d", i), Run: func(engine.Context) (engine.Output, error) {
			time.Sleep(20 * time.Millisecond)
			return engine.Output{Text: "ok"}, nil
		}}); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	cur, peak := 0, 0
	inner := NewServer(reg, "w", 8)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == ExecutePath {
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			defer func() { mu.Lock(); cur--; mu.Unlock() }()
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	re := dial(t, Options{InflightPerWorker: limit}, ts.URL)
	rep, err := engine.Run(reg, engine.Options{Workers: 8, Executor: re})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if peak > limit {
		t.Fatalf("peak inflight %d exceeds limit %d", peak, limit)
	}
}

// TestServerStatus: /v1/status reports identity, registry and protocol.
func TestServerStatus(t *testing.T) {
	reg := testRegistry(t)
	ts := startWorker(t, reg, "rack7", 3)
	re := dial(t, Options{}, ts.URL)
	st, err := re.status(context.Background(), strings.TrimRight(ts.URL, "/"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "rack7" || st.Capacity != 3 || st.Jobs != reg.Len() {
		t.Fatalf("status %+v", st)
	}
	if len(st.JobNames) != reg.Len() {
		t.Fatalf("status names %v", st.JobNames)
	}
	if err := api.CheckProto(st.Proto); err != nil {
		t.Fatal(err)
	}
}

// TestServerRejectsMalformedAndForeignSpecs covers the HTTP error paths.
func TestServerRejectsMalformedAndForeignSpecs(t *testing.T) {
	ts := startWorker(t, testRegistry(t), "w", 2)
	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+ExecutePath, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post("{garbage"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: %s", resp.Status)
	}
	if resp := post(`{"proto":"old","job":"mono0","shard":-1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("foreign proto: %s", resp.Status)
	}
	if resp := post(`{"proto":"` + api.Version + `","job":"nosuch","shard":-1}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown job: %s", resp.Status)
	}
}

// TestCancellationAbortsRemoteCalls: cancelling the scheduler context
// fails queued remote tasks fast and surfaces the cancellation.
func TestCancellationAbortsRemoteCalls(t *testing.T) {
	reg := engine.NewRegistry()
	release := make(chan struct{})
	for i := 0; i < 3; i++ {
		if err := reg.Register(engine.Job{Name: fmt.Sprintf("block%d", i), Run: func(c engine.Context) (engine.Output, error) {
			select {
			case <-release:
			case <-c.Ctx.Done():
				return engine.Output{}, c.Canceled()
			}
			return engine.Output{Text: "done"}, nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	ts := startWorker(t, reg, "w", 4)
	re := dial(t, Options{}, ts.URL)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	rep, err := engine.Run(reg, engine.Options{Workers: 3, Executor: re, Ctx: ctx})
	close(release)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 3 {
		t.Fatalf("failed = %d, want 3 (cancellation must fail in-flight remote tasks)", rep.Failed())
	}
}
