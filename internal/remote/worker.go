package remote

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/backoff"
	"repro/internal/engine"
)

// pollWait is the long-poll window a PullWorker asks the broker to hold
// an empty poll open for. Short enough that liveness (lastSeen) stays
// fresh, long enough that an idle worker costs ~one request per window.
const pollWait = 10 * time.Second

// defaultGrace is the shutdown budget for the final courtesies — the
// drain announcement and the last TaskDone reports — when WorkerOptions
// leaves them zero.
const defaultGrace = 10 * time.Second

// pollRetry is the backoff shape for a worker that cannot reach (or is
// unknown to) its broker: start quick — a broker restart is over in
// well under a second — and ramp to a 15s ceiling so a long outage
// costs ~one request per window, like an idle long-poll. Jitter
// decorrelates the fleet: a hundred workers orphaned by the same broker
// crash must not retry in lockstep.
var pollRetry = backoff.Policy{
	Base:   200 * time.Millisecond,
	Max:    15 * time.Second,
	Jitter: 0.5,
}

// WorkerOptions configures a PullWorker. Capacity is required
// (positive); everything else has a default.
type WorkerOptions struct {
	// Name is the worker's advertised identity; it also seeds the
	// worker's jitter stream (same name, same delay sequence) unless
	// Seed overrides it.
	Name string
	// Capacity is the maximum concurrent tasks; <= 0 panics — resolve
	// the default (NumCPU) at the call site.
	Capacity int
	// Client is the HTTP client; nil uses a default with no overall
	// timeout (long polls and long tasks are the normal case).
	Client *http.Client
	// DrainGrace bounds the shutdown drain announcement to the broker;
	// 0 means 10s.
	DrainGrace time.Duration
	// DoneGrace bounds the final TaskDone report when shutdown lands
	// mid-task; 0 means 10s.
	DoneGrace time.Duration
	// Seed, when non-zero, overrides the jitter seed derived from Name.
	// Chaos harnesses set it to replay a worker's exact retry timing.
	Seed int64
	// Executor overrides the execution stack; nil uses a named local
	// executor over the registry. The daemon sets it to stack a
	// result-plane cache (engine.CachingExecutor) under the lease loop.
	Executor engine.Executor
}

// PullWorker attaches a registry to a broker and works its queue:
// register (hello), pull leases, execute against the local registry,
// renew long-running leases at TTL/3, and report results. Membership is
// soft state — if the broker forgets the worker (restart, expiry), the
// next not_found answer triggers a fresh hello and work continues.
//
// Cache-key safety is enforced here, not at the broker: the executor
// refuses tasks whose cache key this registry cannot reproduce, and the
// refusal is retryable, so the worker abandons the lease (no TaskDone)
// and the broker requeues the task for a compatible worker.
type PullWorker struct {
	name       string
	exec       engine.Executor
	capacity   int
	client     *http.Client
	drainGrace time.Duration
	doneGrace  time.Duration
	seed       int64

	mu       sync.Mutex
	targets  []string // failover list; targets[cur] is the current broker
	cur      int
	workerID string
	ttl      time.Duration
	progress map[string]*api.TaskProgress // latest heartbeat per active lease
}

// NewPullWorker builds a worker for the broker at addr ("host:port",
// full URL, or a comma-separated failover list), executing over reg
// under opts; opts.Capacity <= 0 or an empty address panics.
func NewPullWorker(addr string, reg *engine.Registry, opts WorkerOptions) *PullWorker {
	if opts.Capacity <= 0 {
		panic("remote: pull worker capacity must be positive")
	}
	targets := splitTargets(addr)
	if len(targets) == 0 {
		panic("remote: pull worker needs a broker address")
	}
	drain := opts.DrainGrace
	if drain == 0 {
		drain = defaultGrace
	}
	done := opts.DoneGrace
	if done == 0 {
		done = defaultGrace
	}
	seed := opts.Seed
	if seed == 0 {
		seed = backoff.SeedString(opts.Name)
	}
	exec := opts.Executor
	if exec == nil {
		exec = engine.NewNamedLocalExecutor(reg, opts.Name)
	}
	return &PullWorker{
		targets:    targets,
		name:       opts.Name,
		exec:       exec,
		capacity:   opts.Capacity,
		client:     orDefaultClient(opts.Client),
		drainGrace: drain,
		doneGrace:  done,
		seed:       seed,
		progress:   make(map[string]*api.TaskProgress),
	}
}

func orDefaultClient(c *http.Client) *http.Client {
	if c == nil {
		return &http.Client{}
	}
	return c
}

// Run registers with the broker and works leases until ctx cancels,
// then drains: the broker is told to stop offering leases, in-flight
// tasks finish (or are cancelled with ctx) and report, and Run returns
// ctx's error. Every broker in the failover list down at start is an
// error; a broker that dies later is retried forever under a jittered
// capped backoff, rotating through the list — pull workers are the
// resilient side of the topology. Broker membership is soft state, so
// every failover is followed by a fresh hello: the new primary has
// never seen this worker, and the in-flight leases it inherited resolve
// as expiry followed by requeue.
func (p *PullWorker) Run(ctx context.Context) error {
	if err := p.helloAnywhere(ctx); err != nil {
		return fmt.Errorf("remote: broker %s: %w", p.baseNow(), err)
	}
	retry := pollRetry.New(p.seed)
	slots := make(chan struct{}, p.capacity)
	misses := 0
	var wg sync.WaitGroup
	for ctx.Err() == nil {
		// Hold a slot before polling so we never lease work we cannot
		// start; parallelism comes from executing in goroutines while
		// this loop returns to poll for the next lease.
		select {
		case slots <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		base := p.baseNow()
		lease, err := p.pollOne(ctx)
		if err != nil {
			<-slots
			if ctx.Err() != nil {
				break
			}
			if ae, typed := api.AsError(err); typed {
				misses = 0
				switch ae.Code {
				case api.CodeNotFound:
					// Broker forgot us (restart or expiry): re-register.
					if herr := p.hello(ctx); herr == nil {
						retry.Reset()
						continue
					}
				case api.CodeNotLeader:
					// A standby (or fenced ex-primary) answered: adopt the
					// primary it names and register there.
					p.failover(base, ae.Primary)
					if herr := p.hello(ctx); herr == nil {
						retry.Reset()
						continue
					}
				}
			} else if misses++; misses >= transportFailoverAfter && p.numTargets() > 1 {
				p.failover(base, "")
				misses = 0
				if herr := p.hello(ctx); herr == nil {
					retry.Reset()
					continue
				}
			}
			retry.Sleep(ctx)
			continue
		}
		misses = 0
		retry.Reset()
		if lease == nil {
			<-slots
			continue
		}
		wg.Add(1)
		go func(l api.Lease) {
			defer func() { <-slots; wg.Done() }()
			p.runLease(ctx, l)
		}(*lease)
	}
	// Best-effort drain on a fresh context (ctx is already cancelled);
	// in-flight runLease calls report on their own grace context.
	grace, cancel := context.WithTimeout(context.Background(), p.drainGrace)
	defer cancel()
	p.postBroker(grace, DrainPath, api.DrainRequest{Proto: api.Version, WorkerID: p.id()}, nil)
	wg.Wait()
	return ctx.Err()
}

func (p *PullWorker) id() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.workerID
}

// baseNow is the broker this worker currently talks to.
func (p *PullWorker) baseNow() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.targets[p.cur]
}

func (p *PullWorker) numTargets() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.targets)
}

// failover moves off the broker at from if it is still current,
// adopting a not_leader hint directly (joining the list if new) or
// rotating round-robin without one.
func (p *PullWorker) failover(from, hint string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.targets[p.cur] != from {
		return
	}
	if hint != "" {
		h := normalizeBase(hint)
		for i, t := range p.targets {
			if t == h {
				p.cur = i
				return
			}
		}
		p.targets = append(p.targets, h)
		p.cur = len(p.targets) - 1
		return
	}
	p.cur = (p.cur + 1) % len(p.targets)
}

// helloAnywhere registers with the first broker in the list that
// accepts, following not_leader hints and rotating past dead entries.
// Startup stays strict overall: if no target accepts a registration,
// the last error comes back.
func (p *PullWorker) helloAnywhere(ctx context.Context) error {
	var lastErr error
	for i := 0; i <= p.numTargets(); i++ {
		base := p.baseNow()
		err := p.hello(ctx)
		if err == nil {
			return nil
		}
		lastErr = err
		if ae, ok := api.AsError(err); ok && ae.Code == api.CodeNotLeader {
			p.failover(base, ae.Primary)
			continue
		}
		p.failover(base, "")
	}
	return lastErr
}

// hello (re-)registers with the current broker, adopting its lease TTL.
func (p *PullWorker) hello(ctx context.Context) error {
	var rep api.HelloReply
	err := postJSON(ctx, p.client, p.baseNow()+HelloPath,
		api.WorkerHello{Proto: api.Version, Name: p.name, Capacity: p.capacity}, &rep)
	if err != nil {
		return err
	}
	if err := api.CheckProto(rep.Proto); err != nil {
		return err
	}
	p.mu.Lock()
	p.workerID = rep.WorkerID
	p.ttl = time.Duration(rep.LeaseTTLNS)
	p.mu.Unlock()
	return nil
}

// pollOne long-polls the broker for a single lease.
func (p *PullWorker) pollOne(ctx context.Context) (*api.Lease, error) {
	var rep api.PollReply
	err := p.postBroker(ctx, PollPath, api.PollRequest{
		Proto:    api.Version,
		WorkerID: p.id(),
		Max:      1,
		WaitNS:   int64(pollWait),
	}, &rep)
	if err != nil {
		return nil, err
	}
	if len(rep.Leases) == 0 {
		return nil, nil
	}
	return &rep.Leases[0], nil
}

// runLease executes one lease and reports its result. While the task
// runs, a renewal loop extends the lease at TTL/3 so only worker death
// — never a slow task — trips the broker's expiry requeue.
func (p *PullWorker) runLease(ctx context.Context, l api.Lease) {
	renewDone := make(chan struct{})
	defer close(renewDone)
	defer p.clearProgress(l.ID)
	go p.renewLoop(ctx, l.ID, renewDone)

	var res api.TaskResult
	var err error
	if se, ok := p.exec.(engine.StreamExecutor); ok {
		// Keep the latest heartbeat where the renewal loop can piggyback
		// it onto the renews it already sends — progress costs no
		// additional requests.
		res, err = se.ExecuteStream(ctx, l.Task, func(pr api.TaskProgress) {
			p.setProgress(l.ID, pr)
		})
	} else {
		res, err = p.exec.Execute(ctx, l.Task)
	}
	if err != nil {
		if api.Retryable(err) {
			// This worker cannot serve the task (registry out of sync,
			// cancelled mid-run) but another might: abandon the lease
			// without a TaskDone and let the broker requeue it.
			return
		}
		// Non-retryable: every worker would refuse identically, so
		// record the refusal as the task's deterministic outcome instead
		// of requeueing it forever.
		res = api.TaskResult{Proto: api.Version, Job: l.Task.Job, Shard: l.Task.Shard,
			Key: l.Task.Key, Worker: p.name, Err: err.Error()}
	}
	// Report on a grace context so a shutdown mid-report still lands the
	// finished work.
	rctx := ctx
	if ctx.Err() != nil {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(context.Background(), p.doneGrace)
		defer cancel()
	}
	p.postBroker(rctx, DonePath, api.TaskDone{
		Proto:    api.Version,
		WorkerID: p.id(),
		LeaseID:  l.ID,
		Result:   res,
	}, nil)
}

// renewLoop extends lease id at ~TTL/3 until done closes. The interval
// is jittered (Factor 1: constant amplitude, randomized phase), with
// the lease id mixed into the seed so concurrent leases on one worker
// draw decorrelated sequences — a fleet's renewals spread across the
// TTL window instead of arriving as one synchronized pulse, the
// renewal analog of the thundering herd.
func (p *PullWorker) renewLoop(ctx context.Context, id string, done <-chan struct{}) {
	p.mu.Lock()
	ttl := p.ttl
	p.mu.Unlock()
	if ttl <= 0 {
		return
	}
	beat := backoff.Policy{Base: ttl / 3, Factor: 1, Jitter: 0.3}.New(p.seed + backoff.SeedString(id))
	for {
		t := time.NewTimer(beat.Next())
		select {
		case <-done:
			t.Stop()
			return
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
			req := api.LeaseRenew{
				Proto:    api.Version,
				WorkerID: p.id(),
				LeaseIDs: []string{id},
			}
			if pr := p.getProgress(id); pr != nil {
				req.Progress = map[string]*api.TaskProgress{id: pr}
			}
			var rep api.RenewReply
			p.postBroker(ctx, RenewPath, req, &rep)
		}
	}
}

// setProgress stores the latest heartbeat for an active lease.
func (p *PullWorker) setProgress(id string, pr api.TaskProgress) {
	p.mu.Lock()
	p.progress[id] = &pr
	p.mu.Unlock()
}

func (p *PullWorker) getProgress(id string) *api.TaskProgress {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.progress[id]
}

func (p *PullWorker) clearProgress(id string) {
	p.mu.Lock()
	delete(p.progress, id)
	p.mu.Unlock()
}

// postBroker ships one broker message, resolving the path off the
// current base so renews and done-reports follow a failover.
func (p *PullWorker) postBroker(ctx context.Context, path string, req, out any) error {
	return postJSON(ctx, p.client, p.baseNow()+path, req, out)
}
