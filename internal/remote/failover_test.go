package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/engine"
	"repro/internal/queue"
)

// haPair is a journaled primary/standby broker pair with the standby's
// replication loop live over real HTTP.
type haPair struct {
	primary  *queue.Broker
	standby  *queue.Broker
	tsP, tsS *httptest.Server
	fol      *Follower
}

// startHAPair boots the pair: the standby follows the primary via
// /v2/replicate exactly as `dramlockerd -broker -follow` would, with
// automatic takeover disabled (tests promote explicitly).
func startHAPair(t *testing.T) *haPair {
	t.Helper()
	openJournal := func() *queue.Journal {
		jl, err := queue.OpenJournal(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { jl.Close() })
		return jl
	}
	p := queue.New(queue.Config{Journal: openJournal()})
	tsP := httptest.NewServer(NewBrokerServer(p, "qb-primary"))
	t.Cleanup(tsP.Close)

	s := queue.New(queue.Config{Journal: openJournal(), Follower: true, PrimaryAddr: tsP.URL})
	bsS := NewBrokerServer(s, "qb-standby")
	tsS := httptest.NewServer(bsS)
	t.Cleanup(tsS.Close)

	fol := NewFollower(s, tsP.URL, FollowerOptions{Name: "qb-standby", Advertise: tsS.URL,
		Logf: func(string, ...any) {}})
	bsS.SetPromote(fol.Promote)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); fol.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return &haPair{primary: p, standby: s, tsP: tsP, tsS: tsS, fol: fol}
}

// TestFailoverAfterPromotion is the in-process takeover arc: a
// scheduler and a worker are given the full broker list, the primary
// dies mid-run with a replicated backlog, the standby is promoted, and
// both sides fail over on their own — the final report is byte-exact
// with the local run.
func TestFailoverAfterPromotion(t *testing.T) {
	ha := startHAPair(t)
	local, err := engine.Run(testRegistry(t), engine.Options{Workers: 1, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}

	list := ha.tsP.URL + "," + ha.tsS.URL
	qe := dialQueue(t, list, QueueOptions{})
	repCh := make(chan *engine.Report, 1)
	errCh := make(chan error, 1)
	go func() {
		rep, err := engine.Run(testRegistry(t), engine.Options{Workers: 4, BaseSeed: 5, Executor: qe})
		if err != nil {
			errCh <- err
			return
		}
		repCh <- rep
	}()

	// No worker is serving yet, so the backlog pools on the primary.
	// Wait for replication to carry some of it to the standby, then
	// kill the primary and promote.
	deadline := time.Now().Add(5 * time.Second)
	for ha.standby.Stats().Submitted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("standby never replicated the backlog")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// SIGKILL-shaped death: in-flight long-polls are severed, not
	// drained.
	ha.tsP.CloseClientConnections()
	ha.tsP.Close()
	if _, err := ha.fol.Promote("primary lost (test)"); err != nil {
		t.Fatalf("promote: %v", err)
	}

	// The worker arrives only now, with the dead primary first in its
	// list: registration and polling must find the new primary alone.
	startPullWorker(t, list, testRegistry(t), "pw1", 4)

	select {
	case rep := <-repCh:
		if reportText(rep) != reportText(local) {
			t.Fatalf("post-takeover report diverged:\n%s\nvs local\n%s", reportText(rep), reportText(local))
		}
	case err := <-errCh:
		t.Fatalf("scheduler failed across takeover: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("scheduler never finished after takeover")
	}
	if ha.standby.Role() != queue.RolePrimary {
		t.Fatalf("standby role = %s, want primary", ha.standby.Role())
	}
}

// TestStandbyRejectsMutationsOverHTTP pins the wire shape clients
// depend on for failover: a standby answers mutations with 503, a
// Retry-After floor, and a typed not_leader error naming the primary.
func TestStandbyRejectsMutationsOverHTTP(t *testing.T) {
	ha := startHAPair(t)
	var rep api.SubmitReply
	err := postJSON(context.Background(), http.DefaultClient, ha.tsS.URL+SubmitPath,
		api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{
			{Proto: api.Version, Job: "j", Shard: 0, Seed: 7, Key: "j@hash"},
		}}, &rep)
	ae, ok := api.AsError(err)
	if !ok || ae.Code != api.CodeNotLeader {
		t.Fatalf("standby submit error = %v, want %s", err, api.CodeNotLeader)
	}
	if !ae.Retryable || ae.Primary != ha.tsP.URL || ae.RetryAfterNS <= 0 {
		t.Fatalf("not_leader reply lacks redirect/backoff hints: %+v", ae)
	}

	// The HTTP layer mirrors the typed hint as a Retry-After header,
	// same as rate_limited — one floor-handling path client-side.
	body, _ := json.Marshal(api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{
		{Proto: api.Version, Job: "j2", Shard: 0, Seed: 7, Key: "j2@hash"},
	}})
	resp, err := http.Post(ha.tsS.URL+SubmitPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("standby submit status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 from standby carries no Retry-After header")
	}
}

// TestPromoteFenceRequireHAToken: a broker started with -ha-token
// refuses promote and fence requests whose token is missing or wrong —
// a durable role flip must not be triggerable by anything that merely
// reaches the port — and accepts matching ones.
func TestPromoteFenceRequireHAToken(t *testing.T) {
	jl, err := queue.OpenJournal(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jl.Close() })
	s := queue.New(queue.Config{Journal: jl, Follower: true, PrimaryAddr: "primary:7001"})
	bs := NewBrokerServer(s, "qb-standby")
	bs.SetHAToken("sesame")
	fol := NewFollower(s, "primary:7001", FollowerOptions{
		Name: "qb-standby", Token: "sesame", Logf: func(string, ...any) {}})
	bs.SetPromote(fol.Promote)
	ts := httptest.NewServer(bs)
	t.Cleanup(ts.Close)
	ctx := context.Background()

	var prep api.PromoteReply
	for _, token := range []string{"", "wrong"} {
		err := postJSON(ctx, http.DefaultClient, ts.URL+PromotePath,
			api.PromoteRequest{Proto: api.Version, Token: token}, &prep)
		if ae, ok := api.AsError(err); !ok || ae.Code != api.CodeBadRequest {
			t.Fatalf("promote with token %q = %v, want %s", token, err, api.CodeBadRequest)
		}
	}
	if s.Role() != queue.RoleFollower {
		t.Fatalf("role after refused promotes = %s, want follower", s.Role())
	}
	var frep api.FenceReply
	err = postJSON(ctx, http.DefaultClient, ts.URL+FencePath,
		api.FenceRequest{Proto: api.Version, Epoch: 5, Primary: "np:1"}, &frep)
	if ae, ok := api.AsError(err); !ok || ae.Code != api.CodeBadRequest {
		t.Fatalf("tokenless fence = %v, want %s", err, api.CodeBadRequest)
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch after refused fence = %d, want untouched 1", s.Epoch())
	}

	// The matching token opens both verbs: the configured follower
	// adopts the fence epoch (and keeps following), and a promote flips
	// it to primary past that epoch.
	err = postJSON(ctx, http.DefaultClient, ts.URL+FencePath,
		api.FenceRequest{Proto: api.Version, Epoch: 2, Primary: "np:1", Token: "sesame"}, &frep)
	if err != nil {
		t.Fatalf("tokened fence: %v", err)
	}
	if frep.Epoch != 2 || s.Role() != queue.RoleFollower {
		t.Fatalf("after tokened fence: epoch %d role %s, want 2/follower", frep.Epoch, s.Role())
	}
	err = postJSON(ctx, http.DefaultClient, ts.URL+PromotePath,
		api.PromoteRequest{Proto: api.Version, Token: "sesame"}, &prep)
	if err != nil {
		t.Fatalf("tokened promote: %v", err)
	}
	if prep.Epoch != 3 || prep.Role != "primary" {
		t.Fatalf("tokened promote reply = %+v, want epoch 3 primary", prep)
	}
}
