package remote

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/api"
)

// roundTrip pushes err through the real wire path — writeError renders
// the HTTP response, decodeError reconstructs the client-side error.
func roundTrip(t *testing.T, err error) (*api.Error, int) {
	t.Helper()
	rec := httptest.NewRecorder()
	writeError(rec, err)
	resp := rec.Result()
	defer resp.Body.Close()
	got := decodeError(resp)
	ae, ok := api.AsError(got)
	if !ok {
		t.Fatalf("decodeError lost the type: %v", got)
	}
	return ae, resp.StatusCode
}

// TestErrorRoundTripAllCodes is the wire contract for every defined
// code: Code, Msg and Retryable survive writeError -> HTTP ->
// decodeError unchanged, and no code falls through to a 200 status.
func TestErrorRoundTripAllCodes(t *testing.T) {
	for _, code := range api.Codes() {
		in := api.Errf(code, "probe %s with %q and spaces", code, "quoted")
		ae, status := roundTrip(t, in)
		if ae.Code != in.Code || ae.Msg != in.Msg || ae.Retryable != in.Retryable {
			t.Errorf("%s: round-trip mangled %+v into %+v", code, in, ae)
		}
		if status < 400 {
			t.Errorf("%s: status %d, want an error status", code, status)
		}
	}
}

// TestErrorRoundTripPreservesFlippedRetryable: clients key off the
// Retryable flag the server set, not off a client-side code table — a
// server that overrides the canonical retryability must be believed.
func TestErrorRoundTripPreservesFlippedRetryable(t *testing.T) {
	for _, code := range api.Codes() {
		in := api.Errf(code, "flipped")
		in.Retryable = !in.Retryable
		ae, _ := roundTrip(t, in)
		if ae.Retryable != in.Retryable {
			t.Errorf("%s: flipped Retryable=%v came back %v", code, in.Retryable, ae.Retryable)
		}
	}
}

// TestErrorRoundTripUntyped: plain Go errors are wrapped as internal on
// the way out, and non-JSON bodies (proxy error pages) degrade to an
// untyped error on the way back — never a panic, never a false 200.
func TestErrorRoundTripUntyped(t *testing.T) {
	ae, status := roundTrip(t, fmt.Errorf("disk on fire"))
	if ae.Code != api.CodeInternal || !ae.Retryable {
		t.Fatalf("untyped error should wire as retryable internal: %+v", ae)
	}
	if status != 500 {
		t.Fatalf("status %d, want 500", status)
	}

	rec := httptest.NewRecorder()
	rec.WriteHeader(502)
	rec.WriteString("<html>bad gateway</html>")
	resp := rec.Result()
	defer resp.Body.Close()
	err := decodeError(resp)
	if _, typed := api.AsError(err); typed {
		t.Fatalf("HTML body must decode untyped, got %v", err)
	}
	if !api.Retryable(err) {
		t.Fatal("untyped transport errors default to retryable")
	}
}

// TestQueueFullMapsTo429 pins the admission code's cosmetic status so
// off-the-shelf HTTP tooling (rate-limit dashboards, curl --retry)
// reads it correctly.
func TestQueueFullMapsTo429(t *testing.T) {
	if _, status := roundTrip(t, api.Errf(api.CodeQueueFull, "full")); status != 429 {
		t.Fatalf("queue_full status %d, want 429", status)
	}
}
