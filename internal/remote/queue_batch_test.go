package remote

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/engine"
	"repro/internal/queue"
)

// countingMux wraps a broker server and counts POSTs per path, so a
// test can prove how many submit round-trips a run actually cost.
type countingMux struct {
	h  http.Handler
	mu sync.Mutex
	n  map[string]int
}

func (c *countingMux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		c.mu.Lock()
		c.n[r.URL.Path]++
		c.mu.Unlock()
	}
	c.h.ServeHTTP(w, r)
}

func (c *countingMux) posts(path string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n[path]
}

// TestQueueBatchedSubmissionCoalesces is the batching acceptance test:
// a sharded run fans its submission wave into O(1) batch POSTs instead
// of one POST per task, never touches the single-submit route, and the
// report stays byte-identical to local.
func TestQueueBatchedSubmissionCoalesces(t *testing.T) {
	cm := &countingMux{h: NewBrokerServer(queue.New(queue.Config{}), "qb"), n: make(map[string]int)}
	ts := httptest.NewServer(cm)
	t.Cleanup(ts.Close)
	startPullWorker(t, ts.URL, testRegistry(t), "pw", 4)

	local, err := engine.Run(testRegistry(t), engine.Options{Workers: 1, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}

	// A generous linger makes the coalescing deterministic: the whole
	// fan-out (4 monoliths + 6 grid shards = 10 tasks) lands well inside
	// one wave's window.
	qe := dialQueue(t, ts.URL, QueueOptions{BatchLinger: 100 * time.Millisecond})
	rep, err := engine.Run(testRegistry(t), engine.Options{Workers: 16, BaseSeed: 5, Executor: qe})
	if err != nil {
		t.Fatal(err)
	}
	if reportText(rep) != reportText(local) {
		t.Fatalf("batched report diverged:\n%s\nvs local\n%s", reportText(rep), reportText(local))
	}
	if got := cm.posts(SubmitPath); got != 0 {
		t.Fatalf("%d single-submit POSTs; the executor must always batch", got)
	}
	if got := cm.posts(SubmitBatchPath); got < 1 || got > 3 {
		t.Fatalf("10 tasks cost %d batch POSTs, want O(1) (1-3 waves)", got)
	}
}

// TestQueueFullReturnedAndRetried is the admission acceptance test
// under a depth-1 limit: the broker answers queue_full (typed,
// retryable, HTTP 429) while the queue holds a task, the executor
// retries instead of failing, and both tasks complete once a worker
// drains the backlog.
func TestQueueFullReturnedAndRetried(t *testing.T) {
	bs, ts := startBroker(t, queue.Config{MaxQueued: 1})
	qe := dialQueue(t, ts.URL, QueueOptions{BatchLinger: -1})

	type outcome struct {
		res api.TaskResult
		err error
	}
	results := make(chan outcome, 2)
	for _, job := range []string{"mono0", "mono1"} {
		spec := api.TaskSpec{Proto: api.Version, Job: job, Shard: api.MonolithShard, Seed: 7, Key: job + "@hash"}
		go func(spec api.TaskSpec) {
			res, err := qe.Execute(context.Background(), spec)
			results <- outcome{res, err}
		}(spec)
	}

	// With no worker attached, one task occupies the whole queue and the
	// other bounces off admission until a slot opens. Rejections are
	// visible as the broker's Rejected counter.
	deadline := time.Now().Add(5 * time.Second)
	for bs.Broker().Stats().Rejected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("broker never rejected a submission under the depth-1 limit")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The raw wire answer while the queue is full: typed queue_full, 429.
	err := postJSON(context.Background(), http.DefaultClient, ts.URL+SubmitPath,
		api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{
			{Proto: api.Version, Job: "mono2", Shard: api.MonolithShard, Seed: 7, Key: "mono2@hash"},
		}}, nil)
	ae, typed := api.AsError(err)
	if !typed || ae.Code != api.CodeQueueFull || !ae.Retryable {
		t.Fatalf("direct submit on a full queue: %v, want retryable queue_full", err)
	}

	// A worker drains the queue; the executor's backoff loop must get
	// the bounced task admitted and both Executes finish clean.
	startPullWorker(t, ts.URL, testRegistry(t), "pw", 1)
	for i := 0; i < 2; i++ {
		out := <-results
		if out.err != nil {
			t.Fatalf("task failed despite retryable queue_full: %v", out.err)
		}
		if out.res.Worker != "pw" {
			t.Fatalf("result from %q, want the pull worker", out.res.Worker)
		}
	}
	if st := bs.Broker().Stats(); st.Completed != 2 {
		t.Fatalf("completed = %d, want both tasks", st.Completed)
	}
}

// TestMetricsEndpoint smokes both renderings of GET /v2/metrics: the
// JSON body is the api.BrokerMetrics schema, and ?format=prometheus is
// the text exposition of the same numbers.
func TestMetricsEndpoint(t *testing.T) {
	bs, ts := startBroker(t, queue.Config{})
	startPullWorker(t, ts.URL, testRegistry(t), "pw", 2)
	qe := dialQueue(t, ts.URL, QueueOptions{Tenant: "ci"})
	spec := api.TaskSpec{Proto: api.Version, Job: "mono0", Shard: api.MonolithShard, Seed: 7, Key: "mono0@hash"}
	if _, err := qe.Execute(context.Background(), spec); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var m api.BrokerMetrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := api.CheckProto(m.Proto); err != nil {
		t.Fatal(err)
	}
	if m.Submitted != 1 || m.Completed != 1 {
		t.Fatalf("metrics = %+v, want 1 submitted / 1 completed", m)
	}
	if len(m.Tenants) != 1 || m.Tenants[0].Tenant != "ci" {
		t.Fatalf("tenants = %+v, want the ci tenant", m.Tenants)
	}
	if want, got := bs.Broker().Stats().Completed, m.Completed; want != got {
		t.Fatalf("metrics completed %d != stats completed %d", got, want)
	}

	resp, err = http.Get(ts.URL + MetricsPath + "?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus content type %q", ct)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE dramlocker_broker_pending_tasks gauge",
		"dramlocker_broker_tasks_completed_total 1",
		`dramlocker_tenant_served_total{tenant="ci"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
}
