package remote

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/engine"
	"repro/internal/queue"
)

// startBroker boots a broker HTTP service for tests.
func startBroker(t *testing.T, cfg queue.Config) (*BrokerServer, *httptest.Server) {
	t.Helper()
	bs := NewBrokerServer(queue.New(cfg), "qb")
	ts := httptest.NewServer(bs)
	t.Cleanup(ts.Close)
	return bs, ts
}

// startPullWorker attaches a PullWorker to the broker for the test's
// duration; cleanup stops (and drains) it.
func startPullWorker(t *testing.T, brokerURL string, reg *engine.Registry, name string, capacity int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	w := NewPullWorker(brokerURL, reg, WorkerOptions{Name: name, Capacity: capacity})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

func dialQueue(t *testing.T, url string, opts QueueOptions) *QueueExecutor {
	t.Helper()
	qe, err := DialQueue(context.Background(), url, opts)
	if err != nil {
		t.Fatal(err)
	}
	return qe
}

// TestQueueReportMatchesLocal is the queue-transport half of the
// determinism guarantee: the same registry scheduled through a broker
// and a pull worker renders a report byte-identical to the in-process
// pool, at several scheduler widths.
func TestQueueReportMatchesLocal(t *testing.T) {
	_, ts := startBroker(t, queue.Config{})
	startPullWorker(t, ts.URL, testRegistry(t), "pw1", 4)

	local, err := engine.Run(testRegistry(t), engine.Options{Workers: 1, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Err(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		qe := dialQueue(t, ts.URL, QueueOptions{})
		rep, err := engine.Run(testRegistry(t), engine.Options{Workers: workers, BaseSeed: 5, Executor: qe})
		if err != nil {
			t.Fatal(err)
		}
		if reportText(rep) != reportText(local) {
			t.Fatalf("workers=%d queue report diverged:\n%s\nvs local\n%s", workers, reportText(rep), reportText(local))
		}
	}
}

// rawWorker drives the broker's worker API by hand — a worker the test
// fully controls (grab a lease, sit on it, report late).
type rawWorker struct {
	t    *testing.T
	base string
	id   string
}

func newRawWorker(t *testing.T, base, name string) *rawWorker {
	t.Helper()
	w := &rawWorker{t: t, base: base}
	var rep api.HelloReply
	w.post(HelloPath, api.WorkerHello{Proto: api.Version, Name: name, Capacity: 1}, &rep)
	w.id = rep.WorkerID
	return w
}

func (w *rawWorker) post(path string, req, out any) {
	w.t.Helper()
	if err := postJSON(context.Background(), http.DefaultClient, w.base+path, req, out); err != nil {
		w.t.Fatal(err)
	}
}

// grabLease polls until the broker grants this worker a lease.
func (w *rawWorker) grabLease() api.Lease {
	w.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var rep api.PollReply
		w.post(PollPath, api.PollRequest{Proto: api.Version, WorkerID: w.id, Max: 1}, &rep)
		if len(rep.Leases) > 0 {
			return rep.Leases[0]
		}
		time.Sleep(5 * time.Millisecond)
	}
	w.t.Fatal("raw worker never got a lease")
	return api.Lease{}
}

// TestQueueLeaseExpiryRecoversTask is the worker-death acceptance path:
// a worker takes a lease and dies (never renews, never reports); after
// the TTL the broker requeues the task, a healthy pull worker finishes
// it, and the scheduler's result is exactly the local one.
func TestQueueLeaseExpiryRecoversTask(t *testing.T) {
	bs, ts := startBroker(t, queue.Config{LeaseTTL: 50 * time.Millisecond})
	reg := testRegistry(t)
	qe := dialQueue(t, ts.URL, QueueOptions{})

	// Submit one task through the executor in the background; nothing can
	// serve it yet.
	spec := api.TaskSpec{Proto: api.Version, Job: "mono0", Shard: api.MonolithShard, Seed: 7, Key: "mono0@hash"}
	type outcome struct {
		res api.TaskResult
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := qe.Execute(context.Background(), spec)
		resCh <- outcome{res, err}
	}()

	// The doomed worker grabs the lease and dies silently.
	doomed := newRawWorker(t, strings.TrimRight(ts.URL, "/"), "doomed")
	doomed.grabLease()

	// A healthy worker joins; it must receive the task after lease expiry.
	startPullWorker(t, ts.URL, testRegistry(t), "healthy", 2)

	got := <-resCh
	if got.err != nil {
		t.Fatal(got.err)
	}
	if got.res.Worker != "healthy" {
		t.Fatalf("task finished on %q, want the healthy worker", got.res.Worker)
	}
	want, err := engine.NewLocalExecutor(reg).Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.res.Text != want.Text || string(got.res.Data) != string(want.Data) || got.res.Err != want.Err {
		t.Fatalf("recovered result diverged from local: %+v vs %+v", got.res, want)
	}
	if st := bs.Broker().Stats(); st.Requeues == 0 {
		t.Fatalf("no requeue recorded: %+v", st)
	}
}

// TestQueueHedgedDuplicateIsCacheHit is the straggler acceptance path: a
// slow worker sits on a lease past the hedge threshold, a fast pull
// worker gets a hedged duplicate and wins, and when the straggler
// finally reports, the broker confirms its bytes match the winner — the
// determinism guarantee observable on the wire as a cache hit.
func TestQueueHedgedDuplicateIsCacheHit(t *testing.T) {
	bs, ts := startBroker(t, queue.Config{
		LeaseTTL:   10 * time.Second, // never expires during the test
		HedgeAfter: 30 * time.Millisecond,
	})
	reg := testRegistry(t)
	qe := dialQueue(t, ts.URL, QueueOptions{})

	spec := api.TaskSpec{Proto: api.Version, Job: "mono1", Shard: api.MonolithShard, Seed: 11, Key: "mono1@hash"}
	resCh := make(chan api.TaskResult, 1)
	go func() {
		res, err := qe.Execute(context.Background(), spec)
		if err != nil {
			t.Error(err)
		}
		resCh <- res
	}()

	// The straggler takes the (only) lease and stalls.
	slow := newRawWorker(t, strings.TrimRight(ts.URL, "/"), "slow")
	lease := slow.grabLease()
	if lease.Hedged {
		t.Fatal("first lease must not be hedged")
	}

	// The fast worker joins with an empty queue; once the straggler's
	// lease is older than HedgeAfter it is offered a hedged duplicate.
	startPullWorker(t, ts.URL, testRegistry(t), "fast", 2)
	winner := <-resCh
	if winner.Worker != "fast" {
		t.Fatalf("winner %q, want the hedged fast worker", winner.Worker)
	}

	// The straggler finally finishes the same deterministic computation
	// and reports: first result won, and the duplicate's bytes match.
	slowRes, err := engine.NewNamedLocalExecutor(reg, "slow").Execute(context.Background(), lease.Task)
	if err != nil {
		t.Fatal(err)
	}
	var rep api.DoneReply
	slow.post(DonePath, api.TaskDone{Proto: api.Version, WorkerID: slow.id, LeaseID: lease.ID, Result: slowRes}, &rep)
	if rep.Accepted || !rep.Duplicate || !rep.CacheHit {
		t.Fatalf("straggler's reply %+v, want duplicate cache hit", rep)
	}
	st := bs.Broker().Stats()
	if st.Hedges != 1 || st.Duplicates != 1 || st.DupCacheHits != 1 {
		t.Fatalf("stats %+v, want exactly one hedge and one byte-identical duplicate", st)
	}
}

// TestQueueTenantsShareFairly runs two tenants' schedulers concurrently
// against one single-capacity worker and checks both finish — the
// remote-level smoke of the fairness machinery (exact weighted shares
// are proven deterministically in internal/queue).
func TestQueueTenantsShareFairly(t *testing.T) {
	_, ts := startBroker(t, queue.Config{Weights: map[string]int{"gold": 2}})
	startPullWorker(t, ts.URL, testRegistry(t), "pw", 1)

	var wg sync.WaitGroup
	reports := make([]*engine.Report, 2)
	for i, tenant := range []string{"gold", "bronze"} {
		wg.Add(1)
		go func(i int, tenant string) {
			defer wg.Done()
			qe := dialQueue(t, ts.URL, QueueOptions{Tenant: tenant})
			rep, err := engine.Run(testRegistry(t), engine.Options{Workers: 2, BaseSeed: 5, Executor: qe})
			if err != nil {
				t.Error(err)
				return
			}
			reports[i] = rep
		}(i, tenant)
	}
	wg.Wait()
	local, err := engine.Run(testRegistry(t), engine.Options{Workers: 1, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if rep == nil {
			t.Fatal("a tenant's run never finished")
		}
		if reportText(rep) != reportText(local) {
			t.Fatalf("tenant %d report diverged from local", i)
		}
	}
}

// TestBrokerStatusAndDrain: GET /v1/status identifies the broker (role,
// protocol, drain state), and a draining broker refuses new submissions
// and registrations with the typed draining code.
func TestBrokerStatusAndDrain(t *testing.T) {
	bs, ts := startBroker(t, queue.Config{})

	getStatus := func() api.WorkerStatus {
		t.Helper()
		resp, err := http.Get(ts.URL + StatusPath)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st api.WorkerStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := getStatus()
	if st.Role != "broker" || st.Draining || api.CheckProto(st.Proto) != nil {
		t.Fatalf("fresh broker status %+v", st)
	}

	bs.Drain()
	if st := getStatus(); !st.Draining {
		t.Fatalf("drained broker status %+v", st)
	}
	// Dialing a draining broker fails at startup, not mid-run.
	if _, err := DialQueue(context.Background(), ts.URL, QueueOptions{}); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("dial of draining broker: %v", err)
	}
	// Submissions and registrations are refused with the typed code.
	err := postJSON(context.Background(), http.DefaultClient, ts.URL+SubmitPath, api.JobSubmit{
		Proto: api.Version,
		Tasks: []api.TaskSpec{{Proto: api.Version, Job: "mono0", Shard: api.MonolithShard}},
	}, nil)
	ae, ok := api.AsError(err)
	if !ok || ae.Code != api.CodeDraining || !ae.Retryable {
		t.Fatalf("submit to draining broker: %v", err)
	}
	err = postJSON(context.Background(), http.DefaultClient, ts.URL+HelloPath,
		api.WorkerHello{Proto: api.Version, Name: "late", Capacity: 1}, nil)
	if ae, ok := api.AsError(err); !ok || ae.Code != api.CodeDraining {
		t.Fatalf("hello to draining broker: %v", err)
	}
}

// TestQueueTypedErrorsEndToEnd: error bodies survive the HTTP round
// trip as typed api.Error values, and protocol mismatches are refused at
// registration — the mixed-fleet upgrade guarantee.
func TestQueueTypedErrorsEndToEnd(t *testing.T) {
	_, ts := startBroker(t, queue.Config{})

	// An empty submission is a non-retryable bad request.
	err := postJSON(context.Background(), http.DefaultClient, ts.URL+SubmitPath,
		api.JobSubmit{Proto: api.Version}, nil)
	if ae, ok := api.AsError(err); !ok || ae.Code != api.CodeBadRequest || ae.Retryable {
		t.Fatalf("empty submit: %v", err)
	}

	// A worker from a different protocol revision is rejected at hello.
	err = postJSON(context.Background(), http.DefaultClient, ts.URL+HelloPath,
		api.WorkerHello{Proto: "dlexec1", Name: "old", Capacity: 1}, nil)
	ae, ok := api.AsError(err)
	if !ok || ae.Code != api.CodeProtoMismatch {
		t.Fatalf("old-proto hello: %v", err)
	}
	if !strings.Contains(ae.Error(), "protocol version") {
		t.Fatalf("mismatch message: %v", ae)
	}

	// Unknown ids come back as typed not-found.
	err = postJSON(context.Background(), http.DefaultClient, ts.URL+CancelPath,
		api.CancelRequest{Proto: api.Version, ID: "j999"}, nil)
	if ae, ok := api.AsError(err); !ok || ae.Code != api.CodeNotFound {
		t.Fatalf("cancel unknown job: %v", err)
	}
}
