package remote

import (
	"fmt"
	"io"

	"repro/internal/api"
)

// WritePrometheus exports the text-exposition renderer for sibling
// servers (the standalone result-plane daemon serves the same schema).
func WritePrometheus(w io.Writer, m api.BrokerMetrics) { writePrometheus(w, m) }

// writePrometheus renders broker metrics in the Prometheus text
// exposition format (version 0.0.4): the JSON schema's gauges and
// counters as dramlocker_broker_* series, tenants as labelled series.
// Hand-rolled on purpose — the format is lines of "name{labels} value"
// and a client dependency would be the only third-party import in the
// repo.
func writePrometheus(w io.Writer, m api.BrokerMetrics) {
	g := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g("dramlocker_broker_pending_tasks", "Tasks queued waiting for a poller.", int64(m.Pending))
	g("dramlocker_broker_leased_tasks", "Tasks out on at least one active lease.", int64(m.Leased))
	g("dramlocker_broker_workers", "Live worker registrations.", int64(m.Workers))
	g("dramlocker_broker_jobs", "Retained jobs (queued, running, recently done).", int64(m.Jobs))
	c("dramlocker_broker_tasks_submitted_total", "Tasks submitted over the broker's lifetime.", int64(m.Submitted))
	c("dramlocker_broker_tasks_completed_total", "Tasks completed (including deterministic failures).", int64(m.Completed))
	c("dramlocker_broker_tasks_failed_total", "Completed tasks that carried a task error.", int64(m.Failed))
	c("dramlocker_broker_requeues_total", "Lease expiries that returned a task to the queue.", int64(m.Requeues))
	c("dramlocker_broker_hedges_total", "Duplicate leases granted for stragglers.", int64(m.Hedges))
	c("dramlocker_broker_duplicate_results_total", "Results that arrived after the task was already done.", int64(m.Duplicates))
	c("dramlocker_broker_duplicate_cache_hits_total", "Duplicate results byte-identical to the recorded winner.", int64(m.DupCacheHits))
	c("dramlocker_broker_rejected_jobs_total", "Job submissions refused by admission control (queue_full).", int64(m.Rejected))
	c("dramlocker_broker_rate_limited_jobs_total", "Job submissions deferred by the per-tenant token bucket (rate_limited).", int64(m.RateLimited))
	c("dramlocker_broker_plane_hits_total", "Tasks completed straight from the result plane at submit time (no lease granted).", int64(m.PlaneHits))
	g("dramlocker_broker_goroutines", "Goroutines in the broker process (leak canary for chaos soaks).", int64(m.Goroutines))
	if m.Role != "" {
		// The role gauge is labelled one-hot (value 1 on the current
		// role) so dashboards can plot takeovers as a step function.
		fmt.Fprintf(w, "# HELP dramlocker_broker_role Current HA role (1 on the active label).\n# TYPE dramlocker_broker_role gauge\n")
		for _, role := range []string{"primary", "follower", "fenced"} {
			v := 0
			if role == m.Role {
				v = 1
			}
			fmt.Fprintf(w, "dramlocker_broker_role{role=%q} %d\n", role, v)
		}
		g("dramlocker_broker_epoch", "Fencing epoch (bumps on every promotion).", m.Epoch)
	}
	if rm := m.Replication; rm != nil {
		g("dramlocker_broker_replication_lag_bytes", "Bytes behind the primary's fsynced watermark (-1 across a segment boundary).", rm.LagBytes)
		g("dramlocker_broker_replication_segments_behind", "Whole journal segments between the follower cursor and the primary.", int64(rm.SegmentsBehind))
		c("dramlocker_broker_replication_applied_total", "Replicated journal entries applied.", int64(rm.Applied))
		c("dramlocker_broker_replication_duplicates_total", "Replicated entries already reflected in follower state.", int64(rm.Duplicates))
		c("dramlocker_broker_replication_skipped_total", "Replicated entries dropped as undecodable or unusable.", int64(rm.Skipped))
		c("dramlocker_broker_replication_batches_total", "Replication batches applied.", int64(rm.Batches))
		c("dramlocker_broker_replication_restarts_total", "Stream restarts after the primary compacted past the cursor.", int64(rm.Restarts))
		g("dramlocker_broker_replication_last_contact_seconds", "Time since the last successful replication poll.", rm.LastContactAgeNS/1e9)
	}
	if pm := m.Plane; pm != nil {
		c("dramlocker_plane_hits_total", "Result-plane GET hits (incl. conditional 304s).", pm.Hits)
		c("dramlocker_plane_misses_total", "Result-plane GET misses.", pm.Misses)
		c("dramlocker_plane_puts_total", "First-time result-plane stores.", pm.Puts)
		c("dramlocker_plane_dup_puts_total", "Equivalent duplicate PUTs (original bytes kept).", pm.DupPuts)
		c("dramlocker_plane_conflicts_total", "Differing PUTs under an existing key (last write wins).", pm.Conflicts)
		c("dramlocker_plane_claims_granted_total", "Single-flight claims granted (caller computes).", pm.ClaimsGranted)
		c("dramlocker_plane_claims_denied_total", "Single-flight claims denied (computation deduplicated).", pm.ClaimsDenied)
		c("dramlocker_plane_wait_hits_total", "Long-poll GETs answered by a PUT arriving mid-wait.", pm.WaitHits)
		g("dramlocker_plane_entries", "Entries currently stored in the result plane.", pm.Entries)
		g("dramlocker_plane_bytes_stored", "Bytes currently stored in the result plane.", pm.BytesStored)
		c("dramlocker_plane_evictions_total", "Entries evicted by the byte-budget LRU or idle TTL.", pm.Evictions)
		c("dramlocker_plane_evicted_bytes_total", "Bytes reclaimed by plane evictions.", pm.EvictedBytes)
		c("dramlocker_plane_rewrites_total", "plane.jsonl compactions that made evictions durable.", pm.Rewrites)
	}
	if jm := m.Journal; jm != nil {
		c("dramlocker_broker_journal_appends_total", "Journal entries appended.", int64(jm.Appends))
		c("dramlocker_broker_journal_fsyncs_total", "Journal fsyncs (durable submit/done/cancel barriers).", int64(jm.Fsyncs))
		c("dramlocker_broker_journal_replayed_jobs", "Jobs restored by the startup journal replay.", int64(jm.ReplayedJobs))
		c("dramlocker_broker_journal_replayed_tasks", "Tasks restored by the startup journal replay.", int64(jm.ReplayedTasks))
		c("dramlocker_broker_journal_requeued_tasks", "Replayed tasks that were leased-but-unfinished and requeued.", int64(jm.Requeued))
		c("dramlocker_broker_journal_skipped_entries", "Corrupt or stale journal lines dropped during replay.", int64(jm.Skipped))
		c("dramlocker_broker_journal_compactions_total", "Journal compactions (startup replay and background folds).", int64(jm.Compactions))
		c("dramlocker_broker_journal_rotations_total", "Active-segment rotations (-journal-max-bytes crossings).", int64(jm.Rotations))
		g("dramlocker_broker_journal_segments", "Journal segments on disk (sealed + claimed + active).", int64(jm.Segments))
		g("dramlocker_broker_journal_active_bytes", "Bytes in the journal's active segment.", jm.ActiveBytes)
		c("dramlocker_broker_journal_stream_reads_total", "Replication stream reads served.", int64(jm.StreamReads))
		c("dramlocker_broker_journal_stream_bytes_total", "Bytes served to replication followers.", jm.StreamBytes)
	}
	if len(m.Tenants) > 0 {
		fmt.Fprintf(w, "# HELP dramlocker_tenant_pending_tasks Tasks pending per tenant.\n# TYPE dramlocker_tenant_pending_tasks gauge\n")
		for _, t := range m.Tenants {
			fmt.Fprintf(w, "dramlocker_tenant_pending_tasks{tenant=%q} %d\n", t.Tenant, t.Pending)
		}
		fmt.Fprintf(w, "# HELP dramlocker_tenant_oldest_age_seconds Age of the oldest pending task per tenant.\n# TYPE dramlocker_tenant_oldest_age_seconds gauge\n")
		for _, t := range m.Tenants {
			fmt.Fprintf(w, "dramlocker_tenant_oldest_age_seconds{tenant=%q} %g\n", t.Tenant, float64(t.OldestAgeNS)/1e9)
		}
		fmt.Fprintf(w, "# HELP dramlocker_tenant_served_total Tasks dispatched per tenant (stride numerator).\n# TYPE dramlocker_tenant_served_total counter\n")
		for _, t := range m.Tenants {
			fmt.Fprintf(w, "dramlocker_tenant_served_total{tenant=%q} %d\n", t.Tenant, t.Served)
		}
		fmt.Fprintf(w, "# HELP dramlocker_tenant_weight Fairness weight per tenant.\n# TYPE dramlocker_tenant_weight gauge\n")
		for _, t := range m.Tenants {
			fmt.Fprintf(w, "dramlocker_tenant_weight{tenant=%q} %d\n", t.Tenant, t.Weight)
		}
		fmt.Fprintf(w, "# HELP dramlocker_tenant_max_queued Admission queue-depth limit per tenant (0 = unlimited).\n# TYPE dramlocker_tenant_max_queued gauge\n")
		for _, t := range m.Tenants {
			fmt.Fprintf(w, "dramlocker_tenant_max_queued{tenant=%q} %d\n", t.Tenant, t.MaxQueued)
		}
	}
	if len(m.Leases) > 0 {
		fmt.Fprintf(w, "# HELP dramlocker_lease_age_seconds Age of each active lease.\n# TYPE dramlocker_lease_age_seconds gauge\n")
		for _, l := range m.Leases {
			fmt.Fprintf(w, "dramlocker_lease_age_seconds{lease=%q,worker=%q,task=%q} %g\n", l.Lease, l.Worker, l.Task, float64(l.AgeNS)/1e9)
		}
		fmt.Fprintf(w, "# HELP dramlocker_lease_progress_age_seconds Time since each active lease's last progress heartbeat (stuck-task signal).\n# TYPE dramlocker_lease_progress_age_seconds gauge\n")
		for _, l := range m.Leases {
			fmt.Fprintf(w, "dramlocker_lease_progress_age_seconds{lease=%q,worker=%q,task=%q} %g\n", l.Lease, l.Worker, l.Task, float64(l.ProgressAgeNS)/1e9)
		}
	}
}
