package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/backoff"
	"repro/internal/engine"
)

// downAfter is the number of consecutive transport failures after which a
// worker stops being selected for new tasks (it already failed its way
// out of each of those tasks via exclusion). A success resets the count.
const downAfter = 3

// defaultReprobeAfter is how long a down-marked worker sits out before it
// is offered one probe task (Options.ReprobeAfter = 0).
const defaultReprobeAfter = 15 * time.Second

// Options configures a RemoteExecutor.
type Options struct {
	// InflightPerWorker caps the tasks outstanding on one worker; 0 uses
	// the capacity the worker advertises in its status.
	InflightPerWorker int
	// Fallback, when non-nil, executes tasks every remote worker failed
	// (typically a LocalExecutor over the same registry, so a dead fleet
	// degrades to the in-process pool instead of failing the run).
	Fallback engine.Executor
	// Client is the HTTP client; nil uses a default with no overall
	// request timeout (tasks legitimately run for minutes — cancellation
	// comes from the scheduler's context instead).
	Client *http.Client
	// ReprobeAfter is the backoff before a down-marked worker is offered
	// one probe task. On success the worker rejoins least-loaded
	// selection (its failure count resets); on failure it sits out
	// another full backoff. 0 uses the 15s default; negative disables
	// re-probation (a down worker stays out for the whole run).
	ReprobeAfter time.Duration
}

// worker is one remote daemon the executor can dispatch to.
type worker struct {
	addr  string // base URL, e.g. "http://127.0.0.1:9740"
	name  string // advertised worker name
	slots chan struct{}
	fails atomic.Int32 // consecutive transport failures
	// retryAt is the earliest time (unix nanos) a down worker may be
	// probed again; claimed by CAS so concurrent dispatches send at most
	// one probe per backoff window.
	retryAt atomic.Int64
	// probe jitters each re-probation window (Factor 1: constant
	// amplitude, randomized phase, seeded from the worker's name) so
	// workers downed by one shared outage do not all come up for their
	// probe in the same instant. Guarded by probeMu — backoff state is
	// not safe for the concurrent dispatches that mark failures.
	probeMu sync.Mutex
	probe   *backoff.Backoff
}

// probeDelay returns the next jittered re-probation window.
func (w *worker) probeDelay(base time.Duration) time.Duration {
	w.probeMu.Lock()
	defer w.probeMu.Unlock()
	if w.probe == nil {
		w.probe = backoff.Policy{Base: base, Factor: 1, Jitter: 0.5}.New(backoff.SeedString(w.name + "@" + w.addr))
	}
	return w.probe.Next()
}

func (w *worker) down() bool { return w.fails.Load() >= downAfter }

// RemoteExecutor is an engine.Executor that ships tasks to worker
// daemons over HTTP. Dispatch picks the least-loaded live worker under a
// per-worker inflight limit; a transport failure retries the task on the
// remaining workers (the failed one excluded), and when every worker has
// failed it, the task falls back to Options.Fallback. Task-level errors
// (the job itself failed) are never retried — they are deterministic.
type RemoteExecutor struct {
	workers      []*worker
	fallback     engine.Executor
	client       *http.Client
	reprobeAfter time.Duration
	now          func() time.Time // injectable clock for tests
}

// Dial connects to the given worker addresses ("host:port" or full
// http:// URLs), verifies each speaks the current protocol version, and
// returns an executor over them. Startup is strict — an unreachable or
// version-mismatched worker is a configuration error — while failures
// after Dial degrade via retry, exclusion and fallback.
func Dial(ctx context.Context, addrs []string, opts Options) (*RemoteExecutor, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("remote: no worker addresses")
	}
	e := &RemoteExecutor{
		fallback:     opts.Fallback,
		client:       opts.Client,
		reprobeAfter: opts.ReprobeAfter,
		now:          time.Now,
	}
	if e.client == nil {
		e.client = &http.Client{}
	}
	if e.reprobeAfter == 0 {
		e.reprobeAfter = defaultReprobeAfter
	}
	for _, addr := range addrs {
		base := addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		base = strings.TrimRight(base, "/")
		st, err := e.status(ctx, base)
		if err != nil {
			return nil, fmt.Errorf("remote: worker %s: %w", addr, err)
		}
		limit := opts.InflightPerWorker
		if limit <= 0 {
			limit = st.Capacity
		}
		if limit <= 0 {
			limit = 1
		}
		e.workers = append(e.workers, &worker{
			addr:  base,
			name:  st.Name,
			slots: make(chan struct{}, limit),
		})
	}
	return e, nil
}

// status fetches and validates a worker's /v1/status.
func (e *RemoteExecutor) status(ctx context.Context, base string) (api.WorkerStatus, error) {
	// Status must answer promptly even though task executions may not.
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+StatusPath, nil)
	if err != nil {
		return api.WorkerStatus{}, err
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return api.WorkerStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.WorkerStatus{}, fmt.Errorf("status: %s", resp.Status)
	}
	var st api.WorkerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return api.WorkerStatus{}, fmt.Errorf("status: %w", err)
	}
	if err := api.CheckProto(st.Proto); err != nil {
		return api.WorkerStatus{}, err
	}
	return st, nil
}

// Workers lists the dialled workers as "name@addr" (for CLI logging).
func (e *RemoteExecutor) Workers() []string {
	out := make([]string, len(e.workers))
	for i, w := range e.workers {
		out[i] = w.name + "@" + w.addr
	}
	return out
}

// Execute implements engine.Executor. The spec is tried on live workers
// in least-loaded order. Retry policy keys off the typed error the
// worker returned (api.Error.Retryable), never off HTTP status codes: a
// retryable failure — transport error, draining or out-of-sync worker —
// excludes that worker for this task (and, after downAfter consecutive
// failures, for the rest of the run) and tries the next one; a
// non-retryable failure (the request itself is bad) fails the task
// immediately, because every worker would refuse it the same way.
func (e *RemoteExecutor) Execute(ctx context.Context, spec api.TaskSpec) (api.TaskResult, error) {
	return e.execute(ctx, spec, nil)
}

// ExecuteStream implements engine.StreamExecutor: the task is dispatched
// over the streaming execute path (?stream=1) and the worker's progress
// heartbeats are relayed to onProgress as they arrive. Retry, exclusion
// and fallback behave exactly as Execute — a retried task simply starts
// a fresh stream on the next worker.
func (e *RemoteExecutor) ExecuteStream(ctx context.Context, spec api.TaskSpec, onProgress engine.ProgressFunc) (api.TaskResult, error) {
	return e.execute(ctx, spec, onProgress)
}

func (e *RemoteExecutor) execute(ctx context.Context, spec api.TaskSpec, onProgress engine.ProgressFunc) (api.TaskResult, error) {
	excluded := make(map[*worker]bool)
	var lastErr error
	for {
		w, err := e.acquire(ctx, excluded)
		if err != nil {
			return api.TaskResult{}, err
		}
		if w == nil {
			break
		}
		res, err := e.post(ctx, w, spec, onProgress)
		if err == nil {
			if verr := res.Validate(spec); verr != nil {
				// Answered, but with a mismatched echo (foreign build or
				// broken worker): count it toward down-marking (a
				// consistently mismatched worker must not get a wasted
				// round-trip per task), exclude it for this task and keep
				// trying the rest of the fleet.
				e.markFailure(w)
				lastErr = fmt.Errorf("worker %s: %w", w.addr, verr)
				excluded[w] = true
				continue
			}
			w.fails.Store(0)
			return res, nil
		}
		if ctx.Err() != nil {
			// The run was cancelled; don't burn the fleet's failure
			// budget on aborted requests.
			return api.TaskResult{}, ctx.Err()
		}
		if !api.Retryable(err) {
			// The worker positively identified our request as the
			// problem (malformed spec); trying the rest of the fleet
			// would reproduce the refusal, and the worker is healthy —
			// no failure is recorded against it.
			return api.TaskResult{}, fmt.Errorf("remote: task %s[%d]: worker %s: %w", spec.Job, spec.Shard, w.addr, err)
		}
		e.markFailure(w)
		lastErr = fmt.Errorf("worker %s: %w", w.addr, err)
		excluded[w] = true
	}
	if e.fallback != nil {
		if se, ok := e.fallback.(engine.StreamExecutor); ok && onProgress != nil {
			return se.ExecuteStream(ctx, spec, onProgress)
		}
		return e.fallback.Execute(ctx, spec)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("every worker is down")
	}
	return api.TaskResult{}, fmt.Errorf("remote: task %s[%d]: %w (no fallback executor)", spec.Job, spec.Shard, lastErr)
}

// markFailure records one transport failure against a worker; crossing
// the down threshold starts (or extends) its re-probation backoff.
func (e *RemoteExecutor) markFailure(w *worker) {
	if w.fails.Add(1) >= downAfter && e.reprobeAfter > 0 {
		w.retryAt.Store(e.now().Add(w.probeDelay(e.reprobeAfter)).UnixNano())
	}
}

// acquire reserves an inflight slot on a live, non-excluded worker,
// preferring the least loaded. The reservation happens here — not at
// dispatch time — so concurrent tasks that observe the same load spread
// across the fleet instead of piling onto one worker's queue: a worker
// with a free slot is always taken over blocking on a saturated one.
// A down worker whose re-probation backoff has elapsed is claimed for
// one probe task, dispatched ahead of the live fleet; success resets
// its failure count and restores it to normal least-loaded selection,
// failure buys it another backoff. Returns (nil, nil) when every
// candidate is excluded or down; the caller owns releasing the
// returned worker's slot.
func (e *RemoteExecutor) acquire(ctx context.Context, excluded map[*worker]bool) (*worker, error) {
	for {
		// Candidates in ascending load order (stable across the loop
		// body; load is read once per pass). A down worker whose probe is
		// due is handled first and separately: the probe window is only
		// claimed (retryAt CAS-pushed forward, so concurrent dispatches
		// send at most one probe) when this dispatch actually commits to
		// it, and a claimed probe is dispatched ahead of the live fleet —
		// deferring it behind the least-loaded sort could starve the
		// probe forever on load ties.
		var cands []*worker
		now := e.now().UnixNano()
		for _, w := range e.workers {
			if excluded[w] {
				continue
			}
			if w.down() {
				if e.reprobeAfter <= 0 {
					continue
				}
				at := w.retryAt.Load()
				// at == 0: the worker just crossed the down threshold and
				// markFailure has not stored its backoff yet — not probe
				// time, a full backoff must elapse first.
				if at == 0 || now < at || !w.retryAt.CompareAndSwap(at, now+int64(w.probeDelay(e.reprobeAfter))) {
					continue
				}
				select {
				case w.slots <- struct{}{}:
					return w, nil
				default:
					// Still busy with pre-down work; the claimed window
					// is spent, the probe waits for the next backoff.
					continue
				}
			}
			cands = append(cands, w)
		}
		if len(cands) == 0 {
			return nil, nil
		}
		sort.SliceStable(cands, func(i, j int) bool { return len(cands[i].slots) < len(cands[j].slots) })
		// Fast path: a free slot anywhere in the fleet.
		for _, w := range cands {
			select {
			case w.slots <- struct{}{}:
				return w, nil
			default:
			}
		}
		// Whole fleet saturated: block on the least-loaded candidate,
		// but re-scan periodically in case another worker frees first.
		timer := time.NewTimer(50 * time.Millisecond)
		select {
		case cands[0].slots <- struct{}{}:
			timer.Stop()
			return cands[0], nil
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
}

// post ships spec to w, whose inflight slot the caller has already
// reserved via acquire; the slot is released when the call returns.
// With onProgress set the request asks for the streaming execute path,
// but a plain-JSON answer (a server predating ?stream=1) is still
// accepted — streaming is an upgrade, never a compatibility cliff.
func (e *RemoteExecutor) post(ctx context.Context, w *worker, spec api.TaskSpec, onProgress engine.ProgressFunc) (api.TaskResult, error) {
	defer func() { <-w.slots }()

	body, err := json.Marshal(spec)
	if err != nil {
		return api.TaskResult{}, err
	}
	url := w.addr + ExecutePath
	if onProgress != nil {
		url += "?stream=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return api.TaskResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.client.Do(req)
	if err != nil {
		return api.TaskResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Non-200 bodies are typed api.Error JSON (see writeError); the
		// caller keys its retry/exclusion decision off the decoded code.
		return api.TaskResult{}, decodeError(resp)
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "application/x-ndjson") {
		return decodeStream(resp.Body, onProgress)
	}
	var res api.TaskResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return api.TaskResult{}, fmt.Errorf("decode result: %w", err)
	}
	return res, nil
}

// decodeStream consumes a streaming execute response: ExecuteEvent
// lines until the single terminal line. A connection that drops before
// the terminal line is a transport failure (retryable — the task is
// retried on another worker); a typed error line carries the worker's
// own retry decision through unchanged.
func decodeStream(r io.Reader, onProgress engine.ProgressFunc) (api.TaskResult, error) {
	dec := json.NewDecoder(r)
	for {
		var ev api.ExecuteEvent
		if err := dec.Decode(&ev); err != nil {
			return api.TaskResult{}, fmt.Errorf("execute stream truncated: %w", err)
		}
		switch {
		case ev.Progress != nil:
			if onProgress != nil {
				onProgress(*ev.Progress)
			}
		case ev.Err != nil:
			return api.TaskResult{}, ev.Err
		case ev.Result != nil:
			return *ev.Result, nil
		}
	}
}
