package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/api"
)

// statusPollWait is the long-poll window QueueExecutor asks the broker
// to hold a job-status request open for (seconds on the wire).
const statusPollWait = 10 * time.Second

// QueueOptions configures a QueueExecutor.
type QueueOptions struct {
	// Tenant is the fairness bucket submissions run under; empty means
	// api.DefaultTenant.
	Tenant string
	// Priority orders this scheduler's tasks within its tenant.
	Priority int
	// Client is the HTTP client; nil uses a default with no overall
	// timeout (status long-polls are the normal case).
	Client *http.Client
}

// QueueExecutor is an engine.Executor that routes tasks through a
// dlexec2 broker: each task is submitted as a one-task job and the
// executor long-polls the job status until a worker's result lands.
// Because the scheduler still owns seeding, ordering, merging and
// caching, a report produced through the queue is byte-identical to a
// local or push-remote run — the broker only changes who executes.
type QueueExecutor struct {
	base     string
	name     string
	tenant   string
	priority int
	client   *http.Client
}

// DialQueue connects to the broker at addr ("host:port" or a full URL),
// verifies it speaks the current protocol version, and returns an
// executor over it. Like Dial, startup is strict: an unreachable,
// version-mismatched or draining broker is a configuration error.
func DialQueue(ctx context.Context, addr string, opts QueueOptions) (*QueueExecutor, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	e := &QueueExecutor{
		base:     base,
		tenant:   opts.Tenant,
		priority: opts.Priority,
		client:   orDefaultClient(opts.Client),
	}
	st, err := e.status(ctx)
	if err != nil {
		return nil, fmt.Errorf("remote: broker %s: %w", addr, err)
	}
	if st.Draining {
		return nil, fmt.Errorf("remote: broker %s (%s) is draining", addr, st.Name)
	}
	e.name = st.Name
	return e, nil
}

// status fetches and validates the broker's /v1/status.
func (e *QueueExecutor) status(ctx context.Context) (api.WorkerStatus, error) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.base+StatusPath, nil)
	if err != nil {
		return api.WorkerStatus{}, err
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return api.WorkerStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.WorkerStatus{}, decodeError(resp)
	}
	var st api.WorkerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return api.WorkerStatus{}, fmt.Errorf("status: %w", err)
	}
	if err := api.CheckProto(st.Proto); err != nil {
		return api.WorkerStatus{}, err
	}
	return st, nil
}

// Broker describes the dialled broker as "name@addr" (for CLI logging).
func (e *QueueExecutor) Broker() string { return e.name + "@" + e.base }

// Execute implements engine.Executor: submit the task as a one-task
// job, long-poll its status until done, and hand back the result. The
// result's echo is validated here (the scheduler's own defense — a
// broker or worker cannot slip a foreign result into the cache). A
// cancelled ctx best-effort cancels the job so abandoned work leaves
// the queue.
func (e *QueueExecutor) Execute(ctx context.Context, spec api.TaskSpec) (api.TaskResult, error) {
	var sub api.SubmitReply
	err := postJSON(ctx, e.client, e.base+SubmitPath, api.JobSubmit{
		Proto:    api.Version,
		Tenant:   e.tenant,
		Priority: e.priority,
		Tasks:    []api.TaskSpec{spec},
	}, &sub)
	if err != nil {
		return api.TaskResult{}, fmt.Errorf("remote: task %s[%d]: submit: %w", spec.Job, spec.Shard, err)
	}
	for {
		st, err := e.jobStatus(ctx, sub.ID)
		if err != nil {
			if ctx.Err() != nil {
				e.cancel(sub.ID)
				return api.TaskResult{}, ctx.Err()
			}
			// Transient broker trouble: the job is already queued; keep
			// polling rather than lose it.
			if _, typed := api.AsError(err); !typed {
				sleepCtx(ctx, errBackoff)
				continue
			}
			return api.TaskResult{}, fmt.Errorf("remote: task %s[%d]: job %s: %w", spec.Job, spec.Shard, sub.ID, err)
		}
		switch st.State {
		case api.JobDone:
			res := st.Results[0]
			if verr := res.Validate(spec); verr != nil {
				return api.TaskResult{}, fmt.Errorf("remote: task %s[%d]: broker %s: %w", spec.Job, spec.Shard, e.base, verr)
			}
			return res, nil
		case api.JobCanceled:
			return api.TaskResult{}, api.Errf(api.CodeCanceled, "job %s was canceled", sub.ID)
		}
	}
}

// jobStatus long-polls one job's status.
func (e *QueueExecutor) jobStatus(ctx context.Context, id string) (api.JobStatus, error) {
	url := fmt.Sprintf("%s%s?id=%s&wait=%d", e.base, JobStatusPath, id, int(statusPollWait.Seconds()))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return api.JobStatus{}, err
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return api.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.JobStatus{}, decodeError(resp)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return api.JobStatus{}, fmt.Errorf("decode status: %w", err)
	}
	return st, nil
}

// cancel best-effort cancels an abandoned job.
func (e *QueueExecutor) cancel(id string) {
	ctx, done := context.WithTimeout(context.Background(), 5*time.Second)
	defer done()
	postJSON(ctx, e.client, e.base+CancelPath, api.CancelRequest{Proto: api.Version, ID: id}, nil)
}
