package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/backoff"
)

// statusPollWait is the long-poll window QueueExecutor asks the broker
// to hold a job-status request open for (seconds on the wire).
const statusPollWait = 10 * time.Second

// defaultBatchLinger is how long the first submission of a wave waits
// for concurrent peers before the batch POST ships. Scheduler workers
// call Execute near-simultaneously (a sharded run fans out in one
// burst), so a couple of milliseconds coalesces a whole wave into one
// request without adding visible latency to a lone task.
const defaultBatchLinger = 2 * time.Millisecond

// submitShipTimeout bounds one batch-submit POST; the broker answers
// admission immediately, so anything longer is transport trouble the
// per-task retry loop handles.
const submitShipTimeout = 30 * time.Second

// submitRetry shapes the backoff between submit retries (transport
// failures, queue_full and rate_limited rejections): start at 10ms —
// a drained queue readmits quickly — and cap at 1s so a long outage
// polls about once a second, jittered so a fan-out of schedulers
// rejected together does not resubmit together.
var submitRetry = backoff.Policy{
	Base:   10 * time.Millisecond,
	Max:    time.Second,
	Jitter: 0.5,
}

// statusRetry shapes the backoff between status-poll retries when the
// broker is momentarily unreachable (the crash-recovery window): the
// job is already queued, so patience — up to 5s between polls — beats
// hammering a restarting broker.
var statusRetry = backoff.Policy{
	Base:   200 * time.Millisecond,
	Max:    5 * time.Second,
	Jitter: 0.5,
}

// transportFailoverAfter is how many consecutive transport-level
// failures against one broker a client tolerates before rotating to the
// next target in its failover list. Low enough that a SIGKILLed primary
// costs a couple of seconds, high enough that one dropped packet does
// not bounce the fleet between brokers.
const transportFailoverAfter = 3

// maxResubmits caps how many times one task is resubmitted after its
// job vanished in a failover (admitted by a primary that died before
// the standby replicated the entry). Resubmission is safe — the
// scheduler owns seeding and dedup — but an unbounded loop would mask a
// broker that keeps losing jobs.
const maxResubmits = 5

// normalizeBase canonicalizes one broker address ("host:port" or a full
// URL) so failover-list entries and not_leader hints compare equal.
func normalizeBase(addr string) string {
	base := strings.TrimSpace(addr)
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimRight(base, "/")
}

// splitTargets parses a comma-separated broker list into normalized
// bases, dropping empty elements.
func splitTargets(addr string) []string {
	var out []string
	for _, a := range strings.Split(addr, ",") {
		if strings.TrimSpace(a) == "" {
			continue
		}
		out = append(out, normalizeBase(a))
	}
	return out
}

// QueueOptions configures a QueueExecutor.
type QueueOptions struct {
	// Tenant is the fairness bucket submissions run under; empty means
	// api.DefaultTenant.
	Tenant string
	// Priority orders this scheduler's tasks within its tenant.
	Priority int
	// Client is the HTTP client; nil uses a default with no overall
	// timeout (status long-polls are the normal case).
	Client *http.Client
	// BatchLinger is how long the first submission of a wave waits for
	// concurrent peers before the batch ships: 0 means the default
	// (2ms), negative ships immediately (coalescing only what already
	// queued). Tests raise it to make batching deterministic.
	BatchLinger time.Duration
}

// QueueExecutor is an engine.Executor that routes tasks through a
// dlexec2 broker: each task is submitted as a one-task job and the
// executor long-polls the job status until a worker's result lands.
// Because the scheduler still owns seeding, ordering, merging and
// caching, a report produced through the queue is byte-identical to a
// local or push-remote run — the broker only changes who executes.
type QueueExecutor struct {
	name     string
	tenant   string
	priority int
	client   *http.Client
	linger   time.Duration
	seed     int64        // jitter seed root (broker addrs + tenant)
	seedCtr  atomic.Int64 // decorrelates concurrent retry loops

	// Failover list: targets[cur] is where traffic goes now; failover
	// advances cur when the current target refuses leadership
	// (not_leader), announces a drain, or stops answering.
	tmu     sync.Mutex
	targets []string
	cur     int

	// Submission batcher: concurrent Executes enqueue waiters here; the
	// first one to find the batcher idle becomes responsible for
	// starting the flush loop, which ships everything queued as one
	// JobSubmitBatch POST per wave.
	mu       sync.Mutex
	pending  []*submitWaiter
	flushing bool
}

// submitWaiter is one task's submission parked in the batcher.
type submitWaiter struct {
	sub api.JobSubmit
	ch  chan submitOutcome
}

// submitOutcome is the per-job reply a waiter receives. base records
// which broker answered (or failed), so the retry loop's failover
// targets the broker that actually misbehaved — not whichever target a
// concurrent loop has already moved to.
type submitOutcome struct {
	id   string
	base string
	err  error
}

// DialQueue connects to a broker — "host:port", a full URL, or a
// comma-separated failover list — verifies it speaks the current
// protocol version, and returns an executor over it. With a single
// address startup stays strict: an unreachable, version-mismatched or
// draining broker is a configuration error. With a list, the first
// reachable primary (role "broker", not draining) wins; if only
// standbys answer — a takeover is mid-flight — the executor starts
// against a standby and follows the not_leader hints to the new
// primary once it exists.
func DialQueue(ctx context.Context, addr string, opts QueueOptions) (*QueueExecutor, error) {
	targets := splitTargets(addr)
	if len(targets) == 0 {
		return nil, fmt.Errorf("remote: no broker address in %q", addr)
	}
	linger := opts.BatchLinger
	if linger == 0 {
		linger = defaultBatchLinger
	}
	e := &QueueExecutor{
		targets:  targets,
		tenant:   opts.Tenant,
		priority: opts.Priority,
		client:   orDefaultClient(opts.Client),
		linger:   linger,
		seed:     backoff.SeedString(strings.Join(targets, ",") + "|" + opts.Tenant),
	}
	var firstErr error
	fallback := -1
	var fallbackSt api.WorkerStatus
	for i, t := range targets {
		st, err := e.statusOf(ctx, t)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("remote: broker %s: %w", t, err)
			}
			continue
		}
		if st.Draining {
			if firstErr == nil {
				firstErr = fmt.Errorf("remote: broker %s (%s) is draining", t, st.Name)
			}
			continue
		}
		if st.Role == "broker" {
			e.cur = i
			e.name = st.Name
			return e, nil
		}
		if fallback < 0 {
			fallback = i
			fallbackSt = st
		}
	}
	if fallback >= 0 {
		e.cur = fallback
		e.name = fallbackSt.Name
		return e, nil
	}
	return nil, firstErr
}

// baseNow is the broker traffic currently targets.
func (e *QueueExecutor) baseNow() string {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	return e.targets[e.cur]
}

func (e *QueueExecutor) numTargets() int {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	return len(e.targets)
}

// failover moves traffic off the broker at from — but only if it is
// still the current target, so concurrent retry loops racing to fail
// over move the fleet exactly one hop. A non-empty hint (the primary
// address a not_leader error names) is adopted directly, joining the
// list if new; without one the list is tried round-robin.
func (e *QueueExecutor) failover(from, hint string) {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	if e.targets[e.cur] != from {
		return
	}
	if hint != "" {
		h := normalizeBase(hint)
		for i, t := range e.targets {
			if t == h {
				e.cur = i
				return
			}
		}
		e.targets = append(e.targets, h)
		e.cur = len(e.targets) - 1
		return
	}
	e.cur = (e.cur + 1) % len(e.targets)
}

// statusOf fetches and validates one broker's /v1/status.
func (e *QueueExecutor) statusOf(ctx context.Context, base string) (api.WorkerStatus, error) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+StatusPath, nil)
	if err != nil {
		return api.WorkerStatus{}, err
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return api.WorkerStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.WorkerStatus{}, decodeError(resp)
	}
	var st api.WorkerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return api.WorkerStatus{}, fmt.Errorf("status: %w", err)
	}
	if err := api.CheckProto(st.Proto); err != nil {
		return api.WorkerStatus{}, err
	}
	return st, nil
}

// Broker describes the dialled broker as "name@addr" (for CLI logging).
func (e *QueueExecutor) Broker() string { return e.name + "@" + e.baseNow() }

// Execute implements engine.Executor: submit the task as a one-task
// job, long-poll its status until done, and hand back the result. The
// result's echo is validated here (the scheduler's own defense — a
// broker or worker cannot slip a foreign result into the cache). A
// cancelled ctx best-effort cancels the job so abandoned work leaves
// the queue.
func (e *QueueExecutor) Execute(ctx context.Context, spec api.TaskSpec) (api.TaskResult, error) {
	job := api.JobSubmit{
		Proto:    api.Version,
		Tenant:   e.tenant,
		Priority: e.priority,
		Tasks:    []api.TaskSpec{spec},
	}
	id, err := e.submit(ctx, job)
	if err != nil {
		return api.TaskResult{}, fmt.Errorf("remote: task %s[%d]: submit: %w", spec.Job, spec.Shard, err)
	}
	retry := e.newRetry(statusRetry)
	misses, resubmits := 0, 0
	for {
		base := e.baseNow()
		st, err := e.jobStatus(ctx, base, id)
		if err != nil {
			if ctx.Err() != nil {
				e.cancel(id)
				return api.TaskResult{}, ctx.Err()
			}
			ae, typed := api.AsError(err)
			switch {
			case !typed:
				// Transient broker trouble: the job is already queued; keep
				// polling, rotating to the next target once the current one
				// looks dead rather than lose the job.
				if misses++; misses >= transportFailoverAfter && e.numTargets() > 1 {
					e.failover(base, "")
					misses = 0
				}
				retry.Sleep(ctx)
				continue
			case ae.Code == api.CodeNotFound && resubmits < maxResubmits:
				// The job fell into the replication gap: the broker that
				// admitted it died before the standby pulled the entry.
				// Submitting again is safe — the scheduler owns seeding and
				// dedup, so a re-run produces the identical result.
				misses = 0
				resubmits++
				id2, serr := e.submit(ctx, job)
				if serr != nil {
					return api.TaskResult{}, fmt.Errorf("remote: task %s[%d]: resubmit after lost job %s: %w",
						spec.Job, spec.Shard, id, serr)
				}
				id = id2
				retry.Reset()
				continue
			default:
				return api.TaskResult{}, fmt.Errorf("remote: task %s[%d]: job %s: %w", spec.Job, spec.Shard, id, err)
			}
		}
		misses = 0
		retry.Reset()
		switch st.State {
		case api.JobDone:
			res := st.Results[0]
			if verr := res.Validate(spec); verr != nil {
				return api.TaskResult{}, fmt.Errorf("remote: task %s[%d]: broker %s: %w", spec.Job, spec.Shard, base, verr)
			}
			return res, nil
		case api.JobCanceled:
			return api.TaskResult{}, api.Errf(api.CodeCanceled, "job %s was canceled", id)
		}
	}
}

// newRetry builds one retry loop's backoff off the executor's seed
// root, bumping a counter so concurrent loops jitter independently.
func (e *QueueExecutor) newRetry(p backoff.Policy) *backoff.Backoff {
	return p.New(e.seed + e.seedCtr.Add(1))
}

// submit routes one job through the batcher and waits for its per-job
// outcome, retrying with capped jittered backoff on transport failures
// (broker momentarily down — the crash-recovery window) and on the
// typed "back off and resubmit" rejections: queue_full, rate_limited,
// not_leader, and (with somewhere else to go) draining. Every typed
// retry floors the backoff at the broker's own Retry-After hint —
// retrying sooner than the server's named comeback time is a
// guaranteed wasted round-trip. not_leader additionally fails over to
// the primary the error names; repeated transport failures rotate
// through the target list. Other typed errors fail fast: the broker
// positively rejected the submission.
func (e *QueueExecutor) submit(ctx context.Context, sub api.JobSubmit) (string, error) {
	retry := e.newRetry(submitRetry)
	misses := 0
	for {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		w := &submitWaiter{sub: sub, ch: make(chan submitOutcome, 1)}
		e.enqueue(w)
		var out submitOutcome
		select {
		case out = <-w.ch:
		case <-ctx.Done():
			// The batch may still ship; reap the outcome and cancel the
			// orphan job so abandoned work leaves the queue.
			go func() {
				if late := <-w.ch; late.err == nil {
					e.cancel(late.id)
				}
			}()
			return "", ctx.Err()
		}
		if out.err == nil {
			return out.id, nil
		}
		ae, typed := api.AsError(out.err)
		if typed {
			misses = 0
		}
		switch {
		case !typed:
			if misses++; misses >= transportFailoverAfter && e.numTargets() > 1 {
				e.failover(out.base, "")
				misses = 0
			}
			retry.Sleep(ctx)
		case ae.Code == api.CodeNotLeader:
			// A standby (or fenced ex-primary) answered: go where it
			// points.
			e.failover(out.base, ae.Primary)
			retry.SleepAtLeast(ctx, time.Duration(ae.RetryAfterNS))
		case ae.Code == api.CodeQueueFull, ae.Code == api.CodeRateLimited:
			retry.SleepAtLeast(ctx, time.Duration(ae.RetryAfterNS))
		case ae.Code == api.CodeDraining && e.numTargets() > 1:
			// With a failover list, a draining broker is a hop, not a
			// fatal config error (which it stays for single-target runs).
			e.failover(out.base, "")
			retry.SleepAtLeast(ctx, time.Duration(ae.RetryAfterNS))
		default:
			return "", out.err
		}
	}
}

// enqueue parks w in the batcher, starting the flush loop if idle.
func (e *QueueExecutor) enqueue(w *submitWaiter) {
	e.mu.Lock()
	e.pending = append(e.pending, w)
	if !e.flushing {
		e.flushing = true
		go e.flushLoop()
	}
	e.mu.Unlock()
}

// flushLoop ships submission waves until the batcher drains: linger a
// moment so a fan-out of concurrent Executes lands in one wave, take
// everything pending, POST it as one JobSubmitBatch, repeat.
func (e *QueueExecutor) flushLoop() {
	for {
		if e.linger > 0 {
			backoff.Sleep(context.Background(), e.linger)
		}
		e.mu.Lock()
		batch := e.pending
		e.pending = nil
		if len(batch) == 0 {
			e.flushing = false
			e.mu.Unlock()
			return
		}
		e.mu.Unlock()
		e.ship(batch)
	}
}

// ship POSTs one wave and distributes the per-job outcomes.
func (e *QueueExecutor) ship(batch []*submitWaiter) {
	req := api.JobSubmitBatch{Proto: api.Version, Jobs: make([]api.JobSubmit, len(batch))}
	for i, w := range batch {
		req.Jobs[i] = w.sub
	}
	ctx, cancel := context.WithTimeout(context.Background(), submitShipTimeout)
	defer cancel()
	base := e.baseNow()
	var rep api.SubmitBatchReply
	err := postJSON(ctx, e.client, base+SubmitBatchPath, req, &rep)
	if err == nil && len(rep.Jobs) != len(batch) {
		err = fmt.Errorf("batch submit answered %d of %d jobs", len(rep.Jobs), len(batch))
	}
	for i, w := range batch {
		switch {
		case err != nil:
			w.ch <- submitOutcome{base: base, err: err}
		case rep.Jobs[i].Err != nil:
			w.ch <- submitOutcome{base: base, err: rep.Jobs[i].Err}
		default:
			w.ch <- submitOutcome{base: base, id: rep.Jobs[i].ID}
		}
	}
}

// jobStatus long-polls one job's status against base.
func (e *QueueExecutor) jobStatus(ctx context.Context, base, id string) (api.JobStatus, error) {
	url := fmt.Sprintf("%s%s?id=%s&wait=%d", base, JobStatusPath, id, int(statusPollWait.Seconds()))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return api.JobStatus{}, err
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return api.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.JobStatus{}, decodeError(resp)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return api.JobStatus{}, fmt.Errorf("decode status: %w", err)
	}
	return st, nil
}

// cancel best-effort cancels an abandoned job.
func (e *QueueExecutor) cancel(id string) {
	ctx, done := context.WithTimeout(context.Background(), 5*time.Second)
	defer done()
	postJSON(ctx, e.client, e.baseNow()+CancelPath, api.CancelRequest{Proto: api.Version, ID: id}, nil)
}
