package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/backoff"
)

// statusPollWait is the long-poll window QueueExecutor asks the broker
// to hold a job-status request open for (seconds on the wire).
const statusPollWait = 10 * time.Second

// defaultBatchLinger is how long the first submission of a wave waits
// for concurrent peers before the batch POST ships. Scheduler workers
// call Execute near-simultaneously (a sharded run fans out in one
// burst), so a couple of milliseconds coalesces a whole wave into one
// request without adding visible latency to a lone task.
const defaultBatchLinger = 2 * time.Millisecond

// submitShipTimeout bounds one batch-submit POST; the broker answers
// admission immediately, so anything longer is transport trouble the
// per-task retry loop handles.
const submitShipTimeout = 30 * time.Second

// submitRetry shapes the backoff between submit retries (transport
// failures, queue_full and rate_limited rejections): start at 10ms —
// a drained queue readmits quickly — and cap at 1s so a long outage
// polls about once a second, jittered so a fan-out of schedulers
// rejected together does not resubmit together.
var submitRetry = backoff.Policy{
	Base:   10 * time.Millisecond,
	Max:    time.Second,
	Jitter: 0.5,
}

// statusRetry shapes the backoff between status-poll retries when the
// broker is momentarily unreachable (the crash-recovery window): the
// job is already queued, so patience — up to 5s between polls — beats
// hammering a restarting broker.
var statusRetry = backoff.Policy{
	Base:   200 * time.Millisecond,
	Max:    5 * time.Second,
	Jitter: 0.5,
}

// QueueOptions configures a QueueExecutor.
type QueueOptions struct {
	// Tenant is the fairness bucket submissions run under; empty means
	// api.DefaultTenant.
	Tenant string
	// Priority orders this scheduler's tasks within its tenant.
	Priority int
	// Client is the HTTP client; nil uses a default with no overall
	// timeout (status long-polls are the normal case).
	Client *http.Client
	// BatchLinger is how long the first submission of a wave waits for
	// concurrent peers before the batch ships: 0 means the default
	// (2ms), negative ships immediately (coalescing only what already
	// queued). Tests raise it to make batching deterministic.
	BatchLinger time.Duration
}

// QueueExecutor is an engine.Executor that routes tasks through a
// dlexec2 broker: each task is submitted as a one-task job and the
// executor long-polls the job status until a worker's result lands.
// Because the scheduler still owns seeding, ordering, merging and
// caching, a report produced through the queue is byte-identical to a
// local or push-remote run — the broker only changes who executes.
type QueueExecutor struct {
	base     string
	name     string
	tenant   string
	priority int
	client   *http.Client
	linger   time.Duration
	seed     int64        // jitter seed root (broker addr + tenant)
	seedCtr  atomic.Int64 // decorrelates concurrent retry loops

	// Submission batcher: concurrent Executes enqueue waiters here; the
	// first one to find the batcher idle becomes responsible for
	// starting the flush loop, which ships everything queued as one
	// JobSubmitBatch POST per wave.
	mu       sync.Mutex
	pending  []*submitWaiter
	flushing bool
}

// submitWaiter is one task's submission parked in the batcher.
type submitWaiter struct {
	sub api.JobSubmit
	ch  chan submitOutcome
}

// submitOutcome is the per-job reply a waiter receives.
type submitOutcome struct {
	id  string
	err error
}

// DialQueue connects to the broker at addr ("host:port" or a full URL),
// verifies it speaks the current protocol version, and returns an
// executor over it. Like Dial, startup is strict: an unreachable,
// version-mismatched or draining broker is a configuration error.
func DialQueue(ctx context.Context, addr string, opts QueueOptions) (*QueueExecutor, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	linger := opts.BatchLinger
	if linger == 0 {
		linger = defaultBatchLinger
	}
	e := &QueueExecutor{
		base:     base,
		tenant:   opts.Tenant,
		priority: opts.Priority,
		client:   orDefaultClient(opts.Client),
		linger:   linger,
		seed:     backoff.SeedString(base + "|" + opts.Tenant),
	}
	st, err := e.status(ctx)
	if err != nil {
		return nil, fmt.Errorf("remote: broker %s: %w", addr, err)
	}
	if st.Draining {
		return nil, fmt.Errorf("remote: broker %s (%s) is draining", addr, st.Name)
	}
	e.name = st.Name
	return e, nil
}

// status fetches and validates the broker's /v1/status.
func (e *QueueExecutor) status(ctx context.Context) (api.WorkerStatus, error) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.base+StatusPath, nil)
	if err != nil {
		return api.WorkerStatus{}, err
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return api.WorkerStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.WorkerStatus{}, decodeError(resp)
	}
	var st api.WorkerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return api.WorkerStatus{}, fmt.Errorf("status: %w", err)
	}
	if err := api.CheckProto(st.Proto); err != nil {
		return api.WorkerStatus{}, err
	}
	return st, nil
}

// Broker describes the dialled broker as "name@addr" (for CLI logging).
func (e *QueueExecutor) Broker() string { return e.name + "@" + e.base }

// Execute implements engine.Executor: submit the task as a one-task
// job, long-poll its status until done, and hand back the result. The
// result's echo is validated here (the scheduler's own defense — a
// broker or worker cannot slip a foreign result into the cache). A
// cancelled ctx best-effort cancels the job so abandoned work leaves
// the queue.
func (e *QueueExecutor) Execute(ctx context.Context, spec api.TaskSpec) (api.TaskResult, error) {
	id, err := e.submit(ctx, api.JobSubmit{
		Proto:    api.Version,
		Tenant:   e.tenant,
		Priority: e.priority,
		Tasks:    []api.TaskSpec{spec},
	})
	if err != nil {
		return api.TaskResult{}, fmt.Errorf("remote: task %s[%d]: submit: %w", spec.Job, spec.Shard, err)
	}
	sub := api.SubmitReply{Proto: api.Version, ID: id}
	retry := e.newRetry(statusRetry)
	for {
		st, err := e.jobStatus(ctx, sub.ID)
		if err != nil {
			if ctx.Err() != nil {
				e.cancel(sub.ID)
				return api.TaskResult{}, ctx.Err()
			}
			// Transient broker trouble: the job is already queued; keep
			// polling rather than lose it.
			if _, typed := api.AsError(err); !typed {
				retry.Sleep(ctx)
				continue
			}
			return api.TaskResult{}, fmt.Errorf("remote: task %s[%d]: job %s: %w", spec.Job, spec.Shard, sub.ID, err)
		}
		retry.Reset()
		switch st.State {
		case api.JobDone:
			res := st.Results[0]
			if verr := res.Validate(spec); verr != nil {
				return api.TaskResult{}, fmt.Errorf("remote: task %s[%d]: broker %s: %w", spec.Job, spec.Shard, e.base, verr)
			}
			return res, nil
		case api.JobCanceled:
			return api.TaskResult{}, api.Errf(api.CodeCanceled, "job %s was canceled", sub.ID)
		}
	}
}

// newRetry builds one retry loop's backoff off the executor's seed
// root, bumping a counter so concurrent loops jitter independently.
func (e *QueueExecutor) newRetry(p backoff.Policy) *backoff.Backoff {
	return p.New(e.seed + e.seedCtr.Add(1))
}

// submit routes one job through the batcher and waits for its per-job
// outcome, retrying with capped jittered backoff on transport failures
// (broker momentarily down — the crash-recovery window) and on the two
// typed "back off and resubmit" rejections: queue_full (wait for the
// backlog to drain) and rate_limited (wait out the token bucket,
// flooring the backoff at the broker's own Retry-After hint — retrying
// sooner is a guaranteed wasted round-trip). Other typed errors fail
// fast: the broker positively rejected the submission.
func (e *QueueExecutor) submit(ctx context.Context, sub api.JobSubmit) (string, error) {
	retry := e.newRetry(submitRetry)
	for {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		w := &submitWaiter{sub: sub, ch: make(chan submitOutcome, 1)}
		e.enqueue(w)
		var out submitOutcome
		select {
		case out = <-w.ch:
		case <-ctx.Done():
			// The batch may still ship; reap the outcome and cancel the
			// orphan job so abandoned work leaves the queue.
			go func() {
				if late := <-w.ch; late.err == nil {
					e.cancel(late.id)
				}
			}()
			return "", ctx.Err()
		}
		if out.err == nil {
			return out.id, nil
		}
		ae, typed := api.AsError(out.err)
		switch {
		case !typed:
			retry.Sleep(ctx)
		case ae.Code == api.CodeQueueFull:
			retry.Sleep(ctx)
		case ae.Code == api.CodeRateLimited:
			retry.SleepAtLeast(ctx, time.Duration(ae.RetryAfterNS))
		default:
			return "", out.err
		}
	}
}

// enqueue parks w in the batcher, starting the flush loop if idle.
func (e *QueueExecutor) enqueue(w *submitWaiter) {
	e.mu.Lock()
	e.pending = append(e.pending, w)
	if !e.flushing {
		e.flushing = true
		go e.flushLoop()
	}
	e.mu.Unlock()
}

// flushLoop ships submission waves until the batcher drains: linger a
// moment so a fan-out of concurrent Executes lands in one wave, take
// everything pending, POST it as one JobSubmitBatch, repeat.
func (e *QueueExecutor) flushLoop() {
	for {
		if e.linger > 0 {
			backoff.Sleep(context.Background(), e.linger)
		}
		e.mu.Lock()
		batch := e.pending
		e.pending = nil
		if len(batch) == 0 {
			e.flushing = false
			e.mu.Unlock()
			return
		}
		e.mu.Unlock()
		e.ship(batch)
	}
}

// ship POSTs one wave and distributes the per-job outcomes.
func (e *QueueExecutor) ship(batch []*submitWaiter) {
	req := api.JobSubmitBatch{Proto: api.Version, Jobs: make([]api.JobSubmit, len(batch))}
	for i, w := range batch {
		req.Jobs[i] = w.sub
	}
	ctx, cancel := context.WithTimeout(context.Background(), submitShipTimeout)
	defer cancel()
	var rep api.SubmitBatchReply
	err := postJSON(ctx, e.client, e.base+SubmitBatchPath, req, &rep)
	if err == nil && len(rep.Jobs) != len(batch) {
		err = fmt.Errorf("batch submit answered %d of %d jobs", len(rep.Jobs), len(batch))
	}
	for i, w := range batch {
		switch {
		case err != nil:
			w.ch <- submitOutcome{err: err}
		case rep.Jobs[i].Err != nil:
			w.ch <- submitOutcome{err: rep.Jobs[i].Err}
		default:
			w.ch <- submitOutcome{id: rep.Jobs[i].ID}
		}
	}
}

// jobStatus long-polls one job's status.
func (e *QueueExecutor) jobStatus(ctx context.Context, id string) (api.JobStatus, error) {
	url := fmt.Sprintf("%s%s?id=%s&wait=%d", e.base, JobStatusPath, id, int(statusPollWait.Seconds()))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return api.JobStatus{}, err
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return api.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.JobStatus{}, decodeError(resp)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return api.JobStatus{}, fmt.Errorf("decode status: %w", err)
	}
	return st, nil
}

// cancel best-effort cancels an abandoned job.
func (e *QueueExecutor) cancel(id string) {
	ctx, done := context.WithTimeout(context.Background(), 5*time.Second)
	defer done()
	postJSON(ctx, e.client, e.base+CancelPath, api.CancelRequest{Proto: api.Version, ID: id}, nil)
}
