package remote

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/backoff"
	"repro/internal/queue"
)

// Follower drives a standby broker: it long-polls the primary's
// /v2/replicate endpoint, replays each batch into the local broker via
// ApplyReplicated, and promotes the broker to primary either on
// operator request (Promote, wired to /v2/promote and SIGUSR1 by the
// daemon) or after the primary has been silent longer than
// TakeoverAfter. After promoting it tries to fence the ex-primary so a
// zombie that comes back cannot accept mutations against a stale
// epoch.
type Follower struct {
	b         *queue.Broker
	primary   string
	client    *http.Client
	takeover  time.Duration
	name      string
	advertise string
	token     string
	logf      func(format string, args ...any)

	// interrupt cancels the in-flight long poll when Promote is called
	// from outside the Run loop, so takeover is immediate rather than
	// waiting out a 2s poll.
	interruptOnce sync.Once
	interruptCh   chan struct{}
}

// FollowerOptions tunes a Follower; the zero value is usable.
type FollowerOptions struct {
	// Client is the HTTP client for replication and fencing calls;
	// nil means http.DefaultClient.
	Client *http.Client
	// TakeoverAfter is how long the primary may be unreachable before
	// the follower promotes itself; 0 disables automatic takeover
	// (promotion is operator-only).
	TakeoverAfter time.Duration
	// Name identifies this follower in the primary's logs and seeds
	// its retry jitter.
	Name string
	// Advertise is this broker's client-reachable address, stamped
	// into the fencing record so a fenced ex-primary's not_leader
	// errors can point clients at the new primary.
	Advertise string
	// Token is the shared HA secret sent with fence requests; must
	// match the peer's -ha-token (empty when the peers run without
	// one).
	Token string
	// Logf receives progress lines; nil means log.Printf.
	Logf func(format string, args ...any)
}

// replicateWait is the long-poll window per replication request.
const replicateWait = 2 * time.Second

// replicateMaxBytes bounds one replication batch.
const replicateMaxBytes int64 = 1 << 20

// fenceWindow is how long a freshly promoted broker keeps trying to
// fence the ex-primary. The window is generous because the most useful
// fence lands on a zombie that restarts *after* the takeover — a dead
// host refuses connections instantly, a rebooting one needs time.
const fenceWindow = 2 * time.Minute

// NewFollower builds a follower replaying primaryAddr into b.
func NewFollower(b *queue.Broker, primaryAddr string, opts FollowerOptions) *Follower {
	f := &Follower{
		b:           b,
		primary:     primaryAddr,
		client:      opts.Client,
		takeover:    opts.TakeoverAfter,
		name:        opts.Name,
		advertise:   opts.Advertise,
		token:       opts.Token,
		logf:        opts.Logf,
		interruptCh: make(chan struct{}),
	}
	if f.client == nil {
		f.client = http.DefaultClient
	}
	if f.logf == nil {
		f.logf = log.Printf
	}
	return f
}

// Promote flips the local broker to primary and interrupts the follow
// loop so it stops polling and starts fencing. Safe to call from any
// goroutine (HTTP handler, signal handler).
func (f *Follower) Promote(reason string) (api.PromoteReply, error) {
	epoch, requeued, err := f.b.Promote()
	if err != nil {
		return api.PromoteReply{}, err
	}
	f.logf("dramlockerd %q promoted to primary at epoch %d (%s); %d leases requeued", f.name, epoch, reason, requeued)
	f.interruptOnce.Do(func() { close(f.interruptCh) })
	return api.PromoteReply{Proto: api.Version, Epoch: epoch, Requeued: requeued, Role: "primary"}, nil
}

// Run follows the primary until the broker stops being a follower
// (promotion) or ctx cancels. After a promotion it fences the
// ex-primary before returning.
func (f *Follower) Run(ctx context.Context) error {
	// pollCtx dies when Promote interrupts the loop, so an in-flight
	// 2s long poll does not delay the takeover.
	pollCtx, stopPolls := context.WithCancel(ctx)
	defer stopPolls()
	go func() {
		select {
		case <-f.interruptCh:
			stopPolls()
		case <-pollCtx.Done():
		}
	}()

	bo := backoff.Policy{Base: 100 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}.
		New(backoff.SeedString(f.name + "/follow"))
	lastContact := time.Now()
	for f.b.Role() == queue.RoleFollower {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		gen, seg, off := f.b.ReplCursor()
		req := api.ReplicateRequest{
			Proto:      api.Version,
			Generation: gen, Segment: seg, Offset: off,
			MaxBytes: replicateMaxBytes,
			WaitNS:   int64(replicateWait),
			Epoch:    f.b.Epoch(),
			Follower: f.name,
		}
		var rep api.ReplicateReply
		err := postJSON(pollCtx, f.client, f.primary+ReplicatePath, req, &rep)
		if err == nil {
			lastContact = time.Now()
			bo.Reset()
			ck := queue.StreamChunk{
				Data: rep.Data,
				Gen:  rep.Generation, Seg: rep.Segment, Off: rep.Offset,
				Restart:    rep.Restart,
				PrimarySeg: rep.PrimarySegment, PrimaryOff: rep.PrimaryOffset,
			}
			if aerr := f.b.ApplyReplicated(ck); aerr != nil {
				// Role flipped mid-batch (promotion raced the poll);
				// the loop condition handles it.
				f.logf("dramlockerd %q replication apply: %v", f.name, aerr)
			}
			continue
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if f.b.Role() != queue.RoleFollower {
			break // promoted while the poll was in flight
		}
		if silent := time.Since(lastContact); f.takeover > 0 && silent >= f.takeover {
			if _, perr := f.Promote("primary silent for " + silent.Round(time.Millisecond).String()); perr != nil {
				return perr
			}
			break
		}
		if serr := bo.Sleep(pollCtx); serr != nil && ctx.Err() != nil {
			return ctx.Err()
		}
	}
	if f.b.Role() == queue.RolePrimary {
		f.fencePrimary(ctx)
		return nil
	}
	// The loop only exits on promotion; any other role here means
	// replication stopped with the operator still believing they have a
	// hot standby. Fail loudly instead of returning a silent nil.
	err := fmt.Errorf("follow loop stopped with broker in role %s (not promoted); replication is no longer running", f.b.Role())
	f.logf("dramlockerd %q: %v", f.name, err)
	return err
}

// fencePrimary tells the ex-primary it lost the lease. Best-effort
// with retries: the usual case is a dead host (connection refused
// until the window expires), but a zombie that restarts inside the
// window gets fenced the moment it starts listening. A typed
// non-retryable refusal means the ex-primary outranks us — stop.
func (f *Follower) fencePrimary(ctx context.Context) {
	req := api.FenceRequest{Proto: api.Version, Epoch: f.b.Epoch(), Primary: f.advertise, Token: f.token}
	bo := backoff.Policy{Base: 250 * time.Millisecond, Max: 5 * time.Second, Jitter: 0.5}.
		New(backoff.SeedString(f.name + "/fence"))
	deadline := time.Now().Add(fenceWindow)
	for time.Now().Before(deadline) {
		var rep api.FenceReply
		err := postJSON(ctx, f.client, f.primary+FencePath, req, &rep)
		if err == nil {
			f.logf("dramlockerd %q fenced ex-primary %s at epoch %d", f.name, f.primary, rep.Epoch)
			return
		}
		if ae, ok := api.AsError(err); ok && !ae.Retryable {
			f.logf("dramlockerd %q fence of %s refused: %v", f.name, f.primary, ae)
			return
		}
		if bo.Sleep(ctx) != nil {
			return
		}
	}
	f.logf("dramlockerd %q gave up fencing %s after %v (host presumed dead)", f.name, f.primary, fenceWindow)
}
