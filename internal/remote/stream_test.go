package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/engine"
	"repro/internal/queue"
)

// progressRegistry holds one job emitting a terminal heartbeat (which
// bypasses the executor's progress throttle, so the test never sleeps).
func progressRegistry(t *testing.T) *engine.Registry {
	t.Helper()
	reg := engine.NewRegistry()
	err := reg.Register(engine.Job{Name: "beat", Key: "beat@hash",
		Run: func(c engine.Context) (engine.Output, error) {
			c.Report("train", 3, 3)
			return engine.Output{Text: "beat done"}, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestStreamingExecuteDeliversProgress drives the full push path —
// RemoteExecutor.ExecuteStream against a worker server — and checks the
// job's heartbeat arrives before the result does.
func TestStreamingExecuteDeliversProgress(t *testing.T) {
	ts := startWorker(t, progressRegistry(t), "sw", 2)
	ex, err := Dial(context.Background(), []string{ts.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var beats []api.TaskProgress
	spec := api.TaskSpec{Proto: api.Version, Job: "beat", Shard: api.MonolithShard, Key: "beat@hash", Seed: 1}
	res, err := ex.ExecuteStream(context.Background(), spec, func(p api.TaskProgress) {
		mu.Lock()
		beats = append(beats, p)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != "beat done" || res.Err != "" {
		t.Fatalf("streamed result %+v", res)
	}
	if len(beats) == 0 {
		t.Fatal("no progress heartbeat arrived over the stream")
	}
	last := beats[len(beats)-1]
	if last.Job != "beat" || last.Stage != "train" || last.Done != 3 || last.Total != 3 {
		t.Fatalf("heartbeat %+v", last)
	}
	if last.ElapsedNS < 0 {
		t.Fatalf("negative elapsed %d", last.ElapsedNS)
	}
}

// TestStreamingInBandTypedError proves failures after the 200 commit
// travel as a typed error event, with the code and retryability the
// client's exclusion policy keys off.
func TestStreamingInBandTypedError(t *testing.T) {
	ts := startWorker(t, progressRegistry(t), "sw", 1)
	spec := api.TaskSpec{Proto: api.Version, Job: "beat", Shard: api.MonolithShard, Key: "WRONG@hash"}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+ExecutePath+"?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d, want 200 with in-band error", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("content type %q", ct)
	}
	var ev api.ExecuteEvent
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if ev.Err == nil || ev.Err.Code != api.CodeKeyMismatch || !ev.Err.Retryable {
		t.Fatalf("terminal event %+v, want retryable key_mismatch error", ev)
	}
}

// TestStreamingFallsBackToPlainJSON proves a server that ignores
// ?stream=1 (predating it) still works under ExecuteStream — the
// client accepts a plain JSON result and just reports no progress.
func TestStreamingFallsBackToPlainJSON(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+StatusPath, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.WorkerStatus{Proto: api.Version, Name: "old", Capacity: 1})
	})
	mux.HandleFunc("POST "+ExecutePath, func(w http.ResponseWriter, r *http.Request) {
		var spec api.TaskSpec
		json.NewDecoder(r.Body).Decode(&spec)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(api.TaskResult{
			Proto: api.Version, Job: spec.Job, Shard: spec.Shard, Key: spec.Key,
			Text: "plain", Worker: "old",
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	ex, err := Dial(context.Background(), []string{ts.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	beats := 0
	spec := api.TaskSpec{Proto: api.Version, Job: "beat", Shard: api.MonolithShard, Key: "beat@hash"}
	res, err := ex.ExecuteStream(context.Background(), spec, func(api.TaskProgress) { beats++ })
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != "plain" {
		t.Fatalf("result %+v", res)
	}
	if beats != 0 {
		t.Fatalf("%d heartbeats from a non-streaming server", beats)
	}
}

// TestFleetEndpointShowsProgress checks GET /v2/fleet end to end: a
// renewal carrying progress surfaces in the decoded FleetStatus.
func TestFleetEndpointShowsProgress(t *testing.T) {
	bs, ts := startBroker(t, queue.Config{})
	spec := api.TaskSpec{Proto: api.Version, Job: "train", Shard: 0, Key: "train@hash"}
	if _, err := bs.Broker().Submit(api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{spec}}); err != nil {
		t.Fatal(err)
	}
	w := newRawWorker(t, ts.URL, "rw")
	l := w.grabLease()
	var rep api.RenewReply
	w.post(RenewPath, api.LeaseRenew{
		Proto: api.Version, WorkerID: w.id, LeaseIDs: []string{l.ID},
		Progress: map[string]*api.TaskProgress{l.ID: {Job: "train", Shard: 0, Stage: "search", Done: 5, Total: 9}},
	}, &rep)

	resp, err := http.Get(ts.URL + FleetPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fs api.FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	if fs.Proto != api.Version || len(fs.Workers) != 1 {
		t.Fatalf("fleet %+v", fs)
	}
	fw := fs.Workers[0]
	if fw.Name != "rw" || len(fw.Leases) != 1 {
		t.Fatalf("fleet worker %+v", fw)
	}
	fl := fw.Leases[0]
	if fl.Job != "train" || fl.Progress == nil || fl.Progress.Done != 5 || fl.Progress.Stage != "search" {
		t.Fatalf("fleet lease %+v", fl)
	}
}

// TestPullWorkerPiggybacksProgressOnRenew is the live integration: a
// pull worker's streaming executor reports a heartbeat, the renewal
// loop piggybacks it, and the broker's fleet view shows it — all while
// the task is still running.
func TestPullWorkerPiggybacksProgressOnRenew(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(release) }) })

	reg := engine.NewRegistry()
	err := reg.Register(engine.Job{Name: "slow", Key: "slow@hash",
		Run: func(c engine.Context) (engine.Output, error) {
			c.Report("train", 4, 8)
			<-release
			return engine.Output{Text: "slow done"}, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	// Short TTL so the renew loop (TTL/3) fires quickly.
	bs, ts := startBroker(t, queue.Config{LeaseTTL: 300 * time.Millisecond})
	startPullWorker(t, ts.URL, reg, "pw", 1)
	spec := api.TaskSpec{Proto: api.Version, Job: "slow", Shard: api.MonolithShard, Key: "slow@hash", Seed: 1}
	sub, err := bs.Broker().Submit(api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{spec}})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		fs := bs.Broker().Fleet()
		if len(fs.Workers) == 1 && len(fs.Workers[0].Leases) == 1 {
			if p := fs.Workers[0].Leases[0].Progress; p != nil {
				if p.Job != "slow" || p.Stage != "train" || p.Done != 4 || p.Total != 8 {
					t.Fatalf("fleet progress %+v", p)
				}
				once.Do(func() { close(release) })
				waitJobDone(t, bs.Broker(), sub.ID)
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("fleet view never showed the worker's heartbeat")
}

// waitJobDone polls the broker until the job finishes.
func waitJobDone(t *testing.T, b *queue.Broker, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := b.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == api.JobDone {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job never finished after release")
}
