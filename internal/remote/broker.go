package remote

import (
	"crypto/subtle"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/queue"
)

// Queue (broker) HTTP routes. The submit side is a scheduler's API, the
// worker side is the pull-dispatch lease API; both speak typed api
// messages with api.Error bodies on failure.
const (
	SubmitPath      = "/v2/submit"      // POST api.JobSubmit -> api.SubmitReply
	SubmitBatchPath = "/v2/submitbatch" // POST api.JobSubmitBatch -> api.SubmitBatchReply
	JobStatusPath   = "/v2/job"         // GET ?id=...[&wait=seconds] -> api.JobStatus
	CancelPath      = "/v2/cancel"      // POST api.CancelRequest -> {}
	HelloPath       = "/v2/hello"       // POST api.WorkerHello -> api.HelloReply
	HeartbeatPath   = "/v2/heartbeat"   // POST api.Heartbeat -> {}
	DrainPath       = "/v2/drain"       // POST api.DrainRequest -> {}
	PollPath        = "/v2/poll"        // POST api.PollRequest -> api.PollReply (long poll)
	RenewPath       = "/v2/renew"       // POST api.LeaseRenew -> api.RenewReply
	DonePath        = "/v2/done"        // POST api.TaskDone -> api.DoneReply
	MetricsPath     = "/v2/metrics"     // GET [?format=prometheus] -> api.BrokerMetrics
	FleetPath       = "/v2/fleet"       // GET -> api.FleetStatus
	ReplicatePath   = "/v2/replicate"   // POST api.ReplicateRequest -> api.ReplicateReply (long poll)
	PromotePath     = "/v2/promote"     // POST api.PromoteRequest -> api.PromoteReply
	FencePath       = "/v2/fence"       // POST api.FenceRequest -> api.FenceReply
)

// maxStatusWait bounds the job-status long poll so a stuck client
// cannot park a handler forever; clients simply re-issue the wait.
const maxStatusWait = 30 * time.Second

// maxReplicateWait bounds the replication long poll the same way.
const maxReplicateWait = 30 * time.Second

// drainingRetryAfter is the backoff floor stamped on draining refusals:
// clients with another broker to try fail over instead of hammering a
// broker that is on its way out.
const drainingRetryAfter = time.Second

// BrokerServer fronts an internal/queue.Broker over HTTP: schedulers
// submit jobs and wait on them, workers register and pull leases. The
// broker holds no registry and executes nothing — cache-key safety is
// enforced by the workers (each refuses tasks its own registry cannot
// reproduce) and re-checked by the submitting scheduler on the result
// echo, so a broker cannot poison anyone's cache even in principle.
//
// GET /v1/status answers like a worker daemon (role "broker"), so
// operators can probe protocol compatibility and drain state of any
// dlexec2 daemon the same way.
type BrokerServer struct {
	name     string
	b        *queue.Broker
	draining atomic.Bool
	mux      *http.ServeMux
	// planeMetrics, when set, merges a co-hosted result plane's counters
	// into /v2/metrics so one scrape covers the whole daemon.
	planeMetrics func() api.PlaneMetrics
	// promote, when set, handles /v2/promote instead of calling the
	// broker directly — the daemon wires the Follower's Promote here so
	// an HTTP promotion also stops the follow loop and starts fencing.
	promote func(reason string) (api.PromoteReply, error)
	// haToken, when set, gates /v2/promote and /v2/fence: both are
	// durable cluster-wide role flips, so a bare network path to the
	// port must not be enough to trigger them.
	haToken string
}

// NewBrokerServer wraps b in the HTTP service, named name in statuses.
func NewBrokerServer(b *queue.Broker, name string) *BrokerServer {
	s := &BrokerServer{name: name, b: b, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST "+SubmitPath, s.handleSubmit)
	s.mux.HandleFunc("POST "+SubmitBatchPath, s.handleSubmitBatch)
	s.mux.HandleFunc("GET "+JobStatusPath, s.handleJobStatus)
	s.mux.HandleFunc("POST "+CancelPath, s.handleCancel)
	s.mux.HandleFunc("POST "+HelloPath, s.handleHello)
	s.mux.HandleFunc("POST "+HeartbeatPath, s.handleHeartbeat)
	s.mux.HandleFunc("POST "+DrainPath, s.handleDrain)
	s.mux.HandleFunc("POST "+PollPath, s.handlePoll)
	s.mux.HandleFunc("POST "+RenewPath, s.handleRenew)
	s.mux.HandleFunc("POST "+DonePath, s.handleDone)
	s.mux.HandleFunc("GET "+StatusPath, s.handleStatus)
	s.mux.HandleFunc("GET "+MetricsPath, s.handleMetrics)
	s.mux.HandleFunc("GET "+FleetPath, s.handleFleet)
	s.mux.HandleFunc("POST "+ReplicatePath, s.handleReplicate)
	s.mux.HandleFunc("POST "+PromotePath, s.handlePromote)
	s.mux.HandleFunc("POST "+FencePath, s.handleFence)
	return s
}

// SetPromote installs the promotion hook (call before serving); without
// one, /v2/promote calls the broker directly.
func (s *BrokerServer) SetPromote(f func(reason string) (api.PromoteReply, error)) { s.promote = f }

// SetPlaneMetrics registers a co-hosted result plane's metrics source
// (call before serving).
func (s *BrokerServer) SetPlaneMetrics(f func() api.PlaneMetrics) { s.planeMetrics = f }

// SetHAToken requires the shared secret on promote and fence requests
// (call before serving). Empty disables the check — acceptable only
// when the broker port is reachable by broker peers alone.
func (s *BrokerServer) SetHAToken(token string) { s.haToken = token }

// checkHAToken vets a promote/fence request's shared secret, answering
// a mismatch with a typed non-retryable error. Constant-time compare so
// the token cannot be guessed byte by byte.
func (s *BrokerServer) checkHAToken(w http.ResponseWriter, token string) bool {
	if s.haToken == "" {
		return true
	}
	if subtle.ConstantTimeCompare([]byte(s.haToken), []byte(token)) != 1 {
		writeError(w, api.Errf(api.CodeBadRequest,
			"broker %s requires a matching -ha-token for promote/fence", s.name))
		return false
	}
	return true
}

// ServeHTTP implements http.Handler.
func (s *BrokerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Broker exposes the wrapped queue (stats, direct driving in tests).
func (s *BrokerServer) Broker() *queue.Broker { return s.b }

// Drain refuses new submissions and registrations; queued and leased
// work keeps flowing so the backlog empties.
func (s *BrokerServer) Drain() { s.draining.Store(true) }

// decodeInto parses the request body into msg, answering malformed
// bodies with a typed bad_request.
func decodeInto(w http.ResponseWriter, r *http.Request, msg any) bool {
	if err := json.NewDecoder(r.Body).Decode(msg); err != nil {
		writeError(w, api.Errf(api.CodeBadRequest, "bad message: %v", err))
		return false
	}
	return true
}

// reply writes a 200 JSON body.
func reply(w http.ResponseWriter, msg any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(msg)
}

// drainingErr builds the draining refusal with its Retry-After floor.
func (s *BrokerServer) drainingErr() *api.Error {
	ae := api.Errf(api.CodeDraining, "broker %s is draining", s.name)
	ae.RetryAfterNS = int64(drainingRetryAfter)
	return ae
}

func (s *BrokerServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, s.drainingErr())
		return
	}
	var sub api.JobSubmit
	if !decodeInto(w, r, &sub) {
		return
	}
	rep, err := s.b.Submit(sub)
	if err != nil {
		writeError(w, err)
		return
	}
	reply(w, rep)
}

func (s *BrokerServer) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, s.drainingErr())
		return
	}
	var bt api.JobSubmitBatch
	if !decodeInto(w, r, &bt) {
		return
	}
	rep, err := s.b.SubmitBatch(bt)
	if err != nil {
		writeError(w, err)
		return
	}
	reply(w, rep)
}

func (s *BrokerServer) handleFleet(w http.ResponseWriter, r *http.Request) {
	reply(w, s.b.Fleet())
}

func (s *BrokerServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.b.Metrics()
	if s.planeMetrics != nil {
		pm := s.planeMetrics()
		m.Plane = &pm
	}
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, m)
		return
	}
	reply(w, m)
}

func (s *BrokerServer) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	wait := time.Duration(0)
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v + "s")
		if err != nil {
			writeError(w, api.Errf(api.CodeBadRequest, "bad wait %q: %v", v, err))
			return
		}
		wait = min(d, maxStatusWait)
	}
	st, err := s.b.WaitStatus(r.Context(), id, wait)
	if err != nil {
		writeError(w, err)
		return
	}
	reply(w, st)
}

func (s *BrokerServer) handleCancel(w http.ResponseWriter, r *http.Request) {
	var req api.CancelRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if err := s.b.Cancel(req); err != nil {
		writeError(w, err)
		return
	}
	reply(w, struct{}{})
}

func (s *BrokerServer) handleHello(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, s.drainingErr())
		return
	}
	var h api.WorkerHello
	if !decodeInto(w, r, &h) {
		return
	}
	rep, err := s.b.Hello(h)
	if err != nil {
		writeError(w, err)
		return
	}
	reply(w, rep)
}

func (s *BrokerServer) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb api.Heartbeat
	if !decodeInto(w, r, &hb) {
		return
	}
	if err := s.b.Heartbeat(hb); err != nil {
		writeError(w, err)
		return
	}
	reply(w, struct{}{})
}

func (s *BrokerServer) handleDrain(w http.ResponseWriter, r *http.Request) {
	var d api.DrainRequest
	if !decodeInto(w, r, &d) {
		return
	}
	if err := s.b.Drain(d); err != nil {
		writeError(w, err)
		return
	}
	reply(w, struct{}{})
}

func (s *BrokerServer) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req api.PollRequest
	if !decodeInto(w, r, &req) {
		return
	}
	rep, err := s.b.Poll(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	reply(w, rep)
}

func (s *BrokerServer) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req api.LeaseRenew
	if !decodeInto(w, r, &req) {
		return
	}
	rep, err := s.b.Renew(req)
	if err != nil {
		writeError(w, err)
		return
	}
	reply(w, rep)
}

func (s *BrokerServer) handleDone(w http.ResponseWriter, r *http.Request) {
	var req api.TaskDone
	if !decodeInto(w, r, &req) {
		return
	}
	rep, err := s.b.Done(req)
	if err != nil {
		writeError(w, err)
		return
	}
	reply(w, rep)
}

func (s *BrokerServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.b.Stats()
	// Role "broker" (a mutation-accepting primary) is the historical
	// value clients key off; a follower shows as "standby" and a fenced
	// ex-primary as "fenced", so DialQueue can prefer the leader.
	role := "broker"
	switch s.b.Role() {
	case queue.RoleFollower:
		role = "standby"
	case queue.RoleFenced:
		role = "fenced"
	}
	reply(w, api.WorkerStatus{
		Proto:    api.Version,
		Name:     s.name,
		Role:     role,
		Draining: s.draining.Load(),
		Capacity: st.Workers,
		Inflight: st.Leased,
		Jobs:     st.Jobs,
	})
}

func (s *BrokerServer) handleReplicate(w http.ResponseWriter, r *http.Request) {
	var req api.ReplicateRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if err := api.CheckProto(req.Proto); err != nil {
		writeError(w, err)
		return
	}
	jl := s.b.Journal()
	if jl == nil {
		writeError(w, api.Errf(api.CodeUnavailable,
			"broker %s has no journal; nothing to replicate", s.name))
		return
	}
	wait := min(time.Duration(req.WaitNS), maxReplicateWait)
	ck := jl.WaitStream(r.Context(), req.Generation, req.Segment, req.Offset, req.MaxBytes, wait)
	role := "primary"
	switch s.b.Role() {
	case queue.RoleFollower:
		role = "follower"
	case queue.RoleFenced:
		role = "fenced"
	}
	reply(w, api.ReplicateReply{
		Proto: api.Version, Data: ck.Data,
		Generation: ck.Gen, Segment: ck.Seg, Offset: ck.Off,
		Restart:        ck.Restart,
		PrimarySegment: ck.PrimarySeg, PrimaryOffset: ck.PrimaryOff,
		Epoch: s.b.Epoch(), Role: role,
	})
}

func (s *BrokerServer) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req api.PromoteRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if err := api.CheckProto(req.Proto); err != nil {
		writeError(w, err)
		return
	}
	if !s.checkHAToken(w, req.Token) {
		return
	}
	if s.promote != nil {
		rep, err := s.promote("operator request (/v2/promote)")
		if err != nil {
			writeError(w, err)
			return
		}
		reply(w, rep)
		return
	}
	epoch, requeued, err := s.b.Promote()
	if err != nil {
		writeError(w, err)
		return
	}
	reply(w, api.PromoteReply{
		Proto: api.Version, Epoch: epoch, Requeued: requeued, Role: "primary",
	})
}

func (s *BrokerServer) handleFence(w http.ResponseWriter, r *http.Request) {
	var req api.FenceRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if err := api.CheckProto(req.Proto); err != nil {
		writeError(w, err)
		return
	}
	if !s.checkHAToken(w, req.Token) {
		return
	}
	if err := s.b.Fence(req.Epoch, req.Primary); err != nil {
		writeError(w, err)
		return
	}
	role := "fenced"
	if s.b.Role() == queue.RoleFollower {
		role = "follower"
	}
	reply(w, api.FenceReply{Proto: api.Version, Epoch: s.b.Epoch(), Role: role})
}
