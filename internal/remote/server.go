// Package remote moves the engine's Executor seam across process
// boundaries: a Server exposes a local registry + executor over HTTP, and
// a RemoteExecutor client dispatches the scheduler's tasks to a fleet of
// such workers.
//
// The wire contract is internal/api: a task ships as (job name, shard
// index, seed, cache-key stem) — never code — and the worker re-resolves
// the closures from its own registry, refusing tasks whose cache key it
// cannot reproduce. Because the scheduler keeps ordering, merging,
// seeding and caching local (see internal/engine), a report produced over
// this transport is byte-identical to a local run.
//
// Endpoints (all JSON):
//
//	POST /v1/execute  api.TaskSpec -> api.TaskResult
//	GET  /v1/status   -> api.WorkerStatus
package remote

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/engine"
)

// ExecutePath and StatusPath are the protocol's HTTP routes.
const (
	ExecutePath = "/v1/execute"
	StatusPath  = "/v1/status"
)

// ProtoVersion re-exports the wire protocol revision (api.Version) so
// daemons and CLIs can log it without importing the api package.
const ProtoVersion = api.Version

// Server serves a registry's jobs to remote schedulers. It bounds
// concurrent executions with a capacity semaphore (excess requests queue
// rather than fail — the client's inflight limit is the intended
// back-pressure) and tracks inflight/completed counts for /v1/status.
type Server struct {
	name      string
	reg       *engine.Registry
	exec      engine.Executor
	capacity  int
	slots     chan struct{}
	inflight  atomic.Int64
	completed atomic.Uint64
	mux       *http.ServeMux
}

// NewServer wraps reg in a worker server named name (shown in statuses
// and result stamps) executing at most capacity tasks at once; capacity
// <= 0 panics — resolve the default (NumCPU) at the call site.
func NewServer(reg *engine.Registry, name string, capacity int) *Server {
	if capacity <= 0 {
		panic("remote: server capacity must be positive")
	}
	s := &Server{
		name:     name,
		reg:      reg,
		exec:     engine.NewNamedLocalExecutor(reg, name),
		capacity: capacity,
		slots:    make(chan struct{}, capacity),
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("POST "+ExecutePath, s.handleExecute)
	s.mux.HandleFunc("GET "+StatusPath, s.handleStatus)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handleExecute runs one task. Task-level failures (job error, panic)
// travel inside the TaskResult with status 200; resolution failures —
// unknown job, protocol or cache-key mismatch — are 4xx so the client
// treats them as "this worker cannot run the task".
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	var spec api.TaskSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("remote: bad task spec: %v", err), http.StatusBadRequest)
		return
	}
	if err := spec.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Acquire a capacity slot; abandon the wait if the client hangs up.
	select {
	case s.slots <- struct{}{}:
	case <-r.Context().Done():
		return
	}
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.completed.Add(1)
		<-s.slots
	}()

	// r.Context() cancels the execution when the client disconnects, so
	// an aborted scheduler does not leave orphaned work running.
	res, err := s.exec.Execute(r.Context(), spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// handleStatus reports the worker's identity, registry and load.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := api.WorkerStatus{
		Proto:     api.Version,
		Name:      s.name,
		Jobs:      s.reg.Len(),
		JobNames:  s.reg.Names(),
		Capacity:  s.capacity,
		Inflight:  int(s.inflight.Load()),
		Completed: s.completed.Load(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
