// Package remote moves the engine's Executor seam across process
// boundaries, speaking protocol dlexec2 (internal/api) over HTTP in two
// topologies:
//
//   - Push: a Server exposes a local registry + executor
//     (POST /v1/execute), and a RemoteExecutor client dispatches the
//     scheduler's tasks to a static list of such workers, least-loaded
//     first.
//   - Queue: a BrokerServer fronts an internal/queue broker
//     (submit/poll/cancel plus the worker lease API), PullWorker
//     attaches a registry to a broker and pulls leases, and
//     QueueExecutor submits the scheduler's tasks through the broker.
//
// The wire contract is internal/api: a task ships as (job name, shard
// index, seed, cache-key stem) — never code — and the executing worker
// re-resolves the closures from its own registry, refusing tasks whose
// cache key it cannot reproduce. Because the scheduler keeps ordering,
// merging, seeding and caching local (see internal/engine), a report
// produced over either transport is byte-identical to a local run.
//
// Failures travel as typed api.Error JSON bodies: a stable code plus a
// Retryable flag. Clients never guess from HTTP status codes — a
// non-retryable error fails the task immediately, a retryable one
// excludes the failing worker and tries the rest of the fleet.
//
// Push endpoints (all JSON):
//
//	POST /v1/execute           api.TaskSpec -> api.TaskResult
//	POST /v1/execute?stream=1  api.TaskSpec -> NDJSON api.ExecuteEvent
//	                           (progress heartbeats, then one terminal
//	                           result or error line)
//	GET  /v1/status            -> api.WorkerStatus (proto, role, drain state)
//
// Queue endpoints are listed on BrokerServer.
package remote

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/engine"
)

// ExecutePath and StatusPath are the push protocol's HTTP routes.
const (
	ExecutePath = "/v1/execute"
	StatusPath  = "/v1/status"
)

// ProtoVersion re-exports the wire protocol revision (api.Version) so
// daemons and CLIs can log it without importing the api package.
const ProtoVersion = api.Version

// Server serves a registry's jobs to remote schedulers. It bounds
// concurrent executions with a capacity semaphore (excess requests queue
// rather than fail — the client's inflight limit is the intended
// back-pressure) and tracks inflight/completed counts for /v1/status.
type Server struct {
	name      string
	reg       *engine.Registry
	exec      engine.Executor
	capacity  int
	slots     chan struct{}
	inflight  atomic.Int64
	completed atomic.Uint64
	draining  atomic.Bool
	mux       *http.ServeMux
}

// NewServer wraps reg in a worker server named name (shown in statuses
// and result stamps) executing at most capacity tasks at once; capacity
// <= 0 panics — resolve the default (NumCPU) at the call site.
func NewServer(reg *engine.Registry, name string, capacity int) *Server {
	if capacity <= 0 {
		panic("remote: server capacity must be positive")
	}
	s := &Server{
		name:     name,
		reg:      reg,
		exec:     engine.NewNamedLocalExecutor(reg, name),
		capacity: capacity,
		slots:    make(chan struct{}, capacity),
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("POST "+ExecutePath, s.handleExecute)
	s.mux.HandleFunc("GET "+StatusPath, s.handleStatus)
	return s
}

// SetExecutor replaces the server's executor (call before serving).
// The daemon uses it to stack a result-plane cache between the HTTP
// layer and the local pool (engine.CachingExecutor).
func (s *Server) SetExecutor(exec engine.Executor) { s.exec = exec }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain flips the server into drain mode: /v1/status advertises it and
// new /v1/execute requests are refused with CodeDraining (retryable —
// the client moves the task to another worker). In-flight executions
// finish normally. The daemon calls this on SIGTERM before shutting the
// listener down, so a fleet rollout never strands a task mid-dispatch.
func (s *Server) Drain() { s.draining.Store(true) }

// handleExecute runs one task. Task-level failures (job error, panic)
// travel inside the TaskResult with status 200; resolution failures —
// unknown job, protocol or cache-key mismatch, draining — are typed
// api.Error bodies so the client knows whether another worker could
// serve the task.
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, api.Errf(api.CodeDraining, "worker %s is draining", s.name))
		return
	}
	var spec api.TaskSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, api.Errf(api.CodeBadRequest, "bad task spec: %v", err))
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, err)
		return
	}

	// Acquire a capacity slot; abandon the wait if the client hangs up.
	select {
	case s.slots <- struct{}{}:
	case <-r.Context().Done():
		return
	}
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.completed.Add(1)
		<-s.slots
	}()

	// r.Context() cancels the execution when the client disconnects, so
	// an aborted scheduler does not leave orphaned work running.
	if r.URL.Query().Get("stream") == "1" {
		s.executeStream(w, r, spec)
		return
	}
	res, err := s.exec.Execute(r.Context(), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// executeStream runs one task with live progress: an NDJSON stream of
// api.ExecuteEvent lines — heartbeats while the task computes, then
// exactly one terminal line. Because the 200 header is committed before
// the task finishes, failures after that point travel in-band as a
// typed error event rather than an HTTP status.
func (s *Server) executeStream(w http.ResponseWriter, r *http.Request, spec api.TaskSpec) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var mu sync.Mutex // progress and the terminal event race otherwise
	emit := func(ev api.ExecuteEvent) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	var res api.TaskResult
	var err error
	if se, ok := s.exec.(engine.StreamExecutor); ok {
		res, err = se.ExecuteStream(r.Context(), spec, func(p api.TaskProgress) {
			emit(api.ExecuteEvent{Progress: &p})
		})
	} else {
		res, err = s.exec.Execute(r.Context(), spec)
	}
	if err != nil {
		ae, ok := api.AsError(err)
		if !ok {
			ae = api.Errf(api.CodeInternal, "%v", err)
		}
		emit(api.ExecuteEvent{Err: ae})
		return
	}
	emit(api.ExecuteEvent{Result: &res})
}

// handleStatus reports the worker's identity, registry, load, protocol
// and drain state, so schedulers and operators see compatibility and
// availability before dispatching anything.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := api.WorkerStatus{
		Proto:     api.Version,
		Name:      s.name,
		Role:      "worker",
		Draining:  s.draining.Load(),
		Jobs:      s.reg.Len(),
		JobNames:  s.reg.Names(),
		Capacity:  s.capacity,
		Inflight:  int(s.inflight.Load()),
		Completed: s.completed.Load(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
