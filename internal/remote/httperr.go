package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
)

// httpStatus maps an api error code onto an HTTP status. The status is
// cosmetic — clients key behavior off the JSON body's code and
// Retryable flag — but keeping it truthful makes curl and access logs
// readable.
func httpStatus(code api.Code) int {
	switch code {
	case api.CodeBadRequest, api.CodeProtoMismatch:
		return http.StatusBadRequest
	case api.CodeUnknownJob, api.CodeKeyMismatch:
		return http.StatusUnprocessableEntity
	case api.CodeNotFound:
		return http.StatusNotFound
	case api.CodeCanceled:
		return http.StatusConflict
	case api.CodeQueueFull, api.CodeRateLimited:
		return http.StatusTooManyRequests
	case api.CodeDraining, api.CodeUnavailable, api.CodeNotLeader:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeError renders err as the dlexec2 error body: a JSON api.Error
// with a matching HTTP status. Untyped errors are wrapped as
// CodeInternal so every non-200 response has the same shape.
func writeError(w http.ResponseWriter, err error) {
	ae, ok := api.AsError(err)
	if !ok {
		ae = api.Errf(api.CodeInternal, "%v", err)
	}
	w.Header().Set("Content-Type", "application/json")
	if ae.RetryAfterNS > 0 {
		// Whole seconds, rounded up: Retry-After has no sub-second form.
		secs := (ae.RetryAfterNS + int64(time.Second) - 1) / int64(time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(httpStatus(ae.Code))
	json.NewEncoder(w).Encode(ae)
}

// decodeError reconstructs the typed error from a non-200 response.
// Bodies that are not an api.Error (a proxy's HTML error page, a
// pre-dlexec2 daemon's plain text) degrade to an untyped error, which
// clients treat as a retryable transport failure.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var ae api.Error
	if err := json.Unmarshal(body, &ae); err == nil && ae.Code != "" {
		return &ae
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

// WriteError, DecodeError and PostJSON export the transport helpers for
// sibling HTTP layers (the result plane), so every endpoint in the repo
// speaks the identical typed-error shape.
func WriteError(w http.ResponseWriter, err error) { writeError(w, err) }

// DecodeError reconstructs the typed error from a non-200 response.
func DecodeError(resp *http.Response) error { return decodeError(resp) }

// PostJSON ships req as JSON to url and decodes a 200 into out.
func PostJSON(ctx context.Context, client *http.Client, url string, req, out any) error {
	return postJSON(ctx, client, url, req, out)
}

// postJSON is the shared request helper: ship req as JSON to url and
// decode a 200 into out; non-200s come back as decodeError's typed (or
// transport) error.
func postJSON(ctx context.Context, client *http.Client, url string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode reply: %w", err)
	}
	return nil
}
