// Command dramlocker regenerates the paper's tables and figures by
// running experiment jobs through the internal/engine scheduler. The
// parameter-grid experiments (mc, table1, fig7a, fig7b, defense, table2)
// execute as independent shards — per curve, threshold, mechanism or
// defended model — interleaved on the same worker pool.
//
// Usage:
//
//	dramlocker -exp table1
//	dramlocker -exp fig8a -preset small
//	dramlocker -exp 'fig8*' -preset tiny,small -workers 8
//	dramlocker -exp all -preset tiny -json
//	dramlocker -exp all -preset paper -cache-dir ~/.cache/dramlocker
//	dramlocker -exp all -preset tiny -remote 10.0.0.7:9740,10.0.0.8:9740
//	dramlocker -exp all -preset tiny -broker 10.0.0.9:9741 -tenant ci
//	dramlocker -exp all -broker 10.0.0.9:9741,10.0.0.10:9741   # with failover
//	dramlocker -broker 10.0.0.10:9741 -promote   # promote that standby
//	dramlocker -broker 10.0.0.9:9741 -stats
//	dramlocker -broker 10.0.0.9:9741 -stats -json
//	dramlocker -broker 10.0.0.9:9741 -fleet -watch 2s
//	dramlocker -exp all -preset tiny -plane 10.0.0.9:9742 -cache-dir /tmp/c
//	dramlocker -list
//	dramlocker -list -json
//
// Experiments: fig1a fig1b mc table1 fig7a fig7b defense fig8a fig8b
// fig8pta table2 perf all, or any glob over the full job names
// ("<preset>/<experiment>", e.g. "tiny/fig8a"). Presets: tiny small
// paper (see internal/experiments). -workers 0 uses every CPU; -workers 1
// reproduces the old serial behavior.
//
// Remote execution: -remote hands the tasks to dramlockerd worker
// daemons instead of the in-process pool. The scheduler stays local —
// ordering, seeding, merging and caching never leave this process — so
// the report is byte-identical to a local run; workers that fail are
// excluded and their tasks retried elsewhere, falling back to local
// execution when the whole fleet is unreachable. Daemons must serve the
// presets the run selects (dramlockerd -preset ...).
//
// Queue execution: -broker submits the tasks to a dramlockerd -broker
// job queue instead, where registered pull workers pick them up —
// membership is dynamic, capacity is shared across tenants by weighted
// fairness, and stragglers are hedged. -tenant names this run's
// fairness bucket and -priority orders it within the tenant. The same
// scheduler-side guarantees hold: the report is byte-identical to a
// local or -remote run. -remote and -broker are mutually exclusive.
//
// High availability: -broker accepts a comma-separated failover list
// (primary first, standbys after). The executor prefers the reachable
// primary and, when a broker answers not_leader or stops answering,
// fails over to the address the error names (or the next list entry),
// resubmitting any job lost in the replication gap — the report stays
// byte-identical across a mid-run takeover. -promote (with -broker)
// asks the standby at that address to promote itself to primary
// (POST /v2/promote): the manual half of a planned failover, the
// unplanned half being the standby's own -takeover-after timer.
//
// -list prints the registered jobs with shard counts and cache-key
// stems; -list -json emits the same listing as the dlexec2 api.Listing
// wire schema, for broker tooling and scripts.
//
// -stats (with -broker) fetches the broker's GET /v2/metrics and
// renders a one-screen operational summary: queue census, lifetime
// counters, journal activity, result-plane counters, per-tenant
// depth/age gauges and the oldest in-flight leases with their progress
// age. With -json the raw api.BrokerMetrics payload is emitted instead
// — the same schema the broker serves, so scripts and the e2e gates
// parse one shape.
//
// -fleet (with -broker) fetches GET /v2/fleet — the live per-worker
// view: every registered worker, its active leases, and each lease's
// last progress heartbeat ("train 3/10, 2s ago"). -watch re-renders on
// an interval, making it a minimal top(1) for the fleet; -json emits
// the raw api.FleetStatus.
//
// -plane ADDR attaches this run's cache to a fleet-wide result plane
// (dramlockerd -result-plane): lookups go plane → local cache →
// compute, computed results are written through to both, and the
// plane's claim API ensures only one machine in the fleet computes a
// given key (others long-poll and replay the winner's result). A dead
// plane degrades to the local tiers. Requires caching (-no-cache and
// -plane are mutually exclusive).
//
// Caching: results are memoised per job and per shard under a key built
// from the experiment id, the preset hash and the base seed. By default
// the cache lives in process memory (deduping repeated and preset-free
// jobs within one run). With -cache-dir it also persists as JSON lines
// under that directory, so a re-run of the same presets — even from a new
// process — replays every shard instead of recomputing; entries are
// invalidated by preset changes (new hash → new key) and by code changes
// (experiments.CacheVersion stamp). -no-cache disables caching entirely;
// -require-cached turns a warm run into a gate (non-zero exit unless
// every job replayed), which CI uses to guard the persistence path.
//
// Cancellation: SIGINT/SIGTERM cancel the run — queued work is skipped,
// in-flight remote calls abort — and the process still renders the
// partial report and flushes -cpuprofile/-memprofile before exiting.
//
// Profiling: -cpuprofile and -memprofile write pprof profiles of the
// run, the quickest way to see where a preset spends its time (the
// compute kernels, the DRAM simulation, or the engine itself).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/remote"
	"repro/internal/resultplane"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids or globs (fig1a fig1b mc table1 fig7a fig7b defense fig8a fig8b fig8pta table2 perf all)")
	preset := flag.String("preset", "small", "comma-separated scale presets (tiny small paper)")
	workers := flag.Int("workers", 0, "worker-pool size (0 = number of CPUs, 1 = serial)")
	jsonOut := flag.Bool("json", false, "emit the structured JSON report instead of text")
	list := flag.Bool("list", false, "list the registered jobs (shard counts and cache keys included) and exit")
	quiet := flag.Bool("quiet", false, "suppress per-job progress on stderr")
	cacheDir := flag.String("cache-dir", "", "persist the result cache as JSON lines under this directory (empty = in-memory only)")
	noCache := flag.Bool("no-cache", false, "disable result caching entirely (recompute everything)")
	requireCached := flag.Bool("require-cached", false, "fail unless every job is served from the cache (CI warm-run gate)")
	remoteAddrs := flag.String("remote", "", "comma-separated dramlockerd worker addresses (host:port); empty = in-process execution")
	brokerAddr := flag.String("broker", "", "dramlockerd -broker address (host:port); submit tasks through the job queue instead of -remote push")
	tenant := flag.String("tenant", "", "broker fairness bucket this run submits under (default: the broker's default tenant)")
	priority := flag.Int("priority", 0, "broker priority within the tenant (higher dispatches first)")
	stats := flag.Bool("stats", false, "with -broker: fetch and render the broker's /v2/metrics, then exit (-json for the raw payload)")
	promote := flag.Bool("promote", false, "with -broker: promote the standby broker at that address to primary (POST /v2/promote), then exit")
	haToken := flag.String("ha-token", "", "with -promote: shared secret matching the broker's -ha-token (empty when the broker runs without one)")
	fleet := flag.Bool("fleet", false, "with -broker: fetch and render the broker's /v2/fleet live worker/lease view, then exit (-json for the raw payload)")
	watch := flag.Duration("watch", 0, "with -fleet: re-render every interval (0 = render once)")
	planeAddr := flag.String("plane", "", "result plane address (dramlockerd -result-plane); attach this run's cache to the fleet-wide plane")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file after the run")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	// A signal cancels the engine pass instead of killing the process:
	// run returns with the partial report's errors, and the profile
	// defers above still flush. After the first signal the handler is
	// removed, so a second Ctrl-C falls back to the default hard exit —
	// an escape hatch if in-flight work ignores the cancellation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	err := run(ctx, config{
		exp: *exp, preset: *preset, workers: *workers,
		jsonOut: *jsonOut, list: *list, quiet: *quiet,
		cacheDir: *cacheDir, noCache: *noCache, requireCached: *requireCached,
		remote: *remoteAddrs, broker: *brokerAddr, tenant: *tenant, priority: *priority,
		stats: *stats, promote: *promote, haToken: *haToken, fleet: *fleet, watch: *watch, plane: *planeAddr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
	}

	if *memProfile != "" {
		if merr := writeMemProfile(*memProfile); merr != nil {
			fmt.Fprintln(os.Stderr, merr)
			if err == nil {
				err = merr
			}
		}
	}

	if err != nil {
		// os.Exit skips the deferred stop; flush -cpuprofile explicitly so
		// a failed run still leaves a valid profile behind.
		pprof.StopCPUProfile()
		os.Exit(1)
	}
}

// writeMemProfile captures the end-of-run heap profile.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialise final live-heap statistics
	return pprof.WriteHeapProfile(f)
}

// config carries the parsed flags.
type config struct {
	exp, preset   string
	workers       int
	jsonOut       bool
	list          bool
	quiet         bool
	cacheDir      string
	noCache       bool
	requireCached bool
	remote        string
	broker        string
	tenant        string
	priority      int
	stats         bool
	promote       bool
	haToken       string
	fleet         bool
	watch         time.Duration
	plane         string
}

func run(ctx context.Context, cfg config) error {
	reg, err := experiments.BuildRegistry(experiments.SplitList(cfg.preset))
	if err != nil {
		return err
	}

	if cfg.list {
		return listJobs(reg, cfg.jsonOut)
	}
	if cfg.stats {
		if cfg.broker == "" {
			return fmt.Errorf("-stats needs -broker (whose /v2/metrics to fetch)")
		}
		return showStats(ctx, firstAddr(cfg.broker), cfg.jsonOut)
	}
	if cfg.promote {
		if cfg.broker == "" {
			return fmt.Errorf("-promote needs -broker (which standby to promote)")
		}
		return promoteBroker(ctx, firstAddr(cfg.broker), cfg.haToken)
	}
	if cfg.fleet {
		if cfg.broker == "" {
			return fmt.Errorf("-fleet needs -broker (whose /v2/fleet to fetch)")
		}
		return showFleet(ctx, firstAddr(cfg.broker), cfg.jsonOut, cfg.watch)
	}
	if cfg.remote != "" && cfg.broker != "" {
		return fmt.Errorf("-remote and -broker are mutually exclusive (push vs queue dispatch)")
	}

	cache, err := buildCache(cfg)
	if err != nil {
		return err
	}
	defer cache.Close()
	if cfg.plane != "" {
		if cache == nil {
			return fmt.Errorf("-plane needs caching (-no-cache and -plane are mutually exclusive)")
		}
		cache.SetRemote(&resultplane.EngineCache{C: resultplane.NewClient(httpBase(cfg.plane), experiments.CacheVersion)})
		if !cfg.quiet {
			fmt.Fprintf(os.Stderr, "plane     %s (version %s)\n", httpBase(cfg.plane), experiments.CacheVersion)
		}
	}

	opts := engine.Options{
		Workers: cfg.workers,
		Filter:  jobFilter(cfg.exp),
		Cache:   cache,
		Ctx:     ctx,
	}
	if addrs := experiments.SplitList(cfg.remote); len(addrs) > 0 {
		re, err := remote.Dial(ctx, addrs, remote.Options{
			Fallback: engine.NewLocalExecutor(reg),
		})
		if err != nil {
			return err
		}
		opts.Executor = re
		if !cfg.quiet {
			fmt.Fprintf(os.Stderr, "remote    %s\n", strings.Join(re.Workers(), " "))
		}
	}
	if cfg.broker != "" {
		qe, err := remote.DialQueue(ctx, cfg.broker, remote.QueueOptions{
			Tenant:   cfg.tenant,
			Priority: cfg.priority,
		})
		if err != nil {
			return err
		}
		opts.Executor = qe
		if !cfg.quiet {
			fmt.Fprintf(os.Stderr, "broker    %s\n", qe.Broker())
		}
	}
	if !cfg.quiet {
		opts.OnDone = func(r engine.Result) {
			status := "done"
			switch {
			case r.Failed():
				status = "FAILED"
			case r.Cached:
				status = "cached"
			}
			fmt.Fprintf(os.Stderr, "%-8s %-16s %v\n", status, r.Name, r.Duration.Round(time.Millisecond))
		}
	}

	rep, err := engine.Run(reg, opts)
	if err != nil {
		return err
	}
	if cfg.jsonOut {
		buf, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(buf))
	} else {
		fmt.Print(rep.Text())
	}
	if err := rep.Err(); err != nil {
		return err
	}
	if cfg.requireCached {
		if computed := len(rep.Results) - rep.CachedCount(); computed > 0 {
			return fmt.Errorf("-require-cached: %d of %d jobs were computed, not replayed from the cache",
				computed, len(rep.Results))
		}
	}
	return nil
}

// listJobs renders the registry listing. Shard counts and cache keys
// let operators predict remote fan-out (units = shards, or 1 for
// monoliths) and cache reuse before submitting a run. With jsonOut the
// listing is emitted as the dlexec2 api.Listing wire schema, so broker
// tooling and scripts consume the same shape the protocol uses.
func listJobs(reg *engine.Registry, jsonOut bool) error {
	if jsonOut {
		listing := api.Listing{Proto: api.Version}
		for _, j := range reg.Jobs() {
			units := 1
			if n := len(j.Shards); n > 0 {
				units = n
			}
			listing.Jobs = append(listing.Jobs, api.JobInfo{
				Name:  j.Name,
				Title: j.Title,
				Units: units,
				Key:   j.Key,
			})
		}
		buf, err := json.MarshalIndent(listing, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(buf))
		return nil
	}
	fmt.Printf("%-16s %-6s %-24s %s\n", "JOB", "UNITS", "CACHE KEY", "TITLE")
	for _, j := range reg.Jobs() {
		units := "1"
		if n := len(j.Shards); n > 0 {
			units = fmt.Sprintf("%d", n)
		}
		key := j.Key
		if key == "" {
			key = "-"
		}
		fmt.Printf("%-16s %-6s %-24s %s\n", j.Name, units, key, j.Title)
	}
	return nil
}

// showStats fetches a broker's /v2/metrics and renders it: the raw
// api.BrokerMetrics JSON with jsonOut, otherwise a one-screen
// operational summary.
func showStats(ctx context.Context, addr string, jsonOut bool) error {
	base := httpBase(addr)
	var m api.BrokerMetrics
	if err := fetchJSON(ctx, addr, base+remote.MetricsPath, &m); err != nil {
		return err
	}
	if err := api.CheckProto(m.Proto); err != nil {
		return fmt.Errorf("broker %s: %w", addr, err)
	}
	if jsonOut {
		buf, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(buf))
		return nil
	}
	fmt.Printf("broker     %s (proto %s)\n", base, m.Proto)
	if m.Role != "" {
		fmt.Printf("role       %s, epoch %d\n", m.Role, m.Epoch)
	}
	if rm := m.Replication; rm != nil {
		lag := "crossing a segment boundary"
		if rm.LagBytes >= 0 {
			lag = fmt.Sprintf("%d bytes", rm.LagBytes)
		}
		fmt.Printf("replicate  cursor seg %d @ %d, primary seg %d @ %d, lag %s (%d segments behind)\n",
			rm.Segment, rm.Offset, rm.PrimarySegment, rm.PrimaryOffset, lag, rm.SegmentsBehind)
		fmt.Printf("           %d applied, %d duplicates, %d skipped over %d batches (%d restarts), last contact %v ago\n",
			rm.Applied, rm.Duplicates, rm.Skipped, rm.Batches, rm.Restarts,
			time.Duration(rm.LastContactAgeNS).Round(time.Millisecond))
	}
	fmt.Printf("queue      %d pending, %d leased, %d workers, %d jobs retained\n",
		m.Pending, m.Leased, m.Workers, m.Jobs)
	fmt.Printf("lifetime   %d submitted, %d completed (%d failed), %d requeues, %d hedges\n",
		m.Submitted, m.Completed, m.Failed, m.Requeues, m.Hedges)
	fmt.Printf("duplicates %d (%d byte-identical cache hits), %d submissions rejected (queue_full)\n",
		m.Duplicates, m.DupCacheHits, m.Rejected)
	fmt.Printf("admission  %d rate-limited submissions, %d goroutines\n",
		m.RateLimited, m.Goroutines)
	if jm := m.Journal; jm != nil {
		fmt.Printf("journal    %d appends (%d fsyncs), replayed %d jobs / %d tasks (%d requeued, %d lines skipped), %d compactions\n",
			jm.Appends, jm.Fsyncs, jm.ReplayedJobs, jm.ReplayedTasks,
			jm.Requeued, jm.Skipped, jm.Compactions)
		fmt.Printf("segments   %d on disk (%d rotations), active %d bytes\n",
			jm.Segments, jm.Rotations, jm.ActiveBytes)
		if jm.StreamReads > 0 {
			fmt.Printf("stream     %d replication reads served (%d bytes)\n",
				jm.StreamReads, jm.StreamBytes)
		}
	}
	if m.PlaneHits > 0 || m.Plane != nil {
		fmt.Printf("plane      %d broker dispatch hits (tasks completed at submit, zero leases)\n", m.PlaneHits)
	}
	if pm := m.Plane; pm != nil {
		fmt.Printf("plane      %d entries (%d bytes), %d puts (%d dup, %d conflicts), %d hits / %d misses (%d via long-poll)\n",
			pm.Entries, pm.BytesStored, pm.Puts, pm.DupPuts, pm.Conflicts,
			pm.Hits, pm.Misses, pm.WaitHits)
		fmt.Printf("claims     %d granted, %d denied (fleet-wide single-flight)\n",
			pm.ClaimsGranted, pm.ClaimsDenied)
		if pm.Evictions > 0 || pm.Rewrites > 0 {
			fmt.Printf("evictions  %d entries (%d bytes reclaimed), %d plane.jsonl rewrites\n",
				pm.Evictions, pm.EvictedBytes, pm.Rewrites)
		}
	}
	for _, t := range m.Tenants {
		limit := "unlimited"
		if t.MaxQueued > 0 {
			limit = fmt.Sprintf("%d", t.MaxQueued)
		}
		fmt.Printf("tenant     %-12s weight %d, pending %d (oldest %v), served %d, limit %s\n",
			t.Tenant, t.Weight, t.Pending,
			time.Duration(t.OldestAgeNS).Round(time.Millisecond), t.Served, limit)
	}
	for _, l := range m.Leases {
		fmt.Printf("lease      %-12s %-16s worker %s, age %v, progress %v ago\n",
			l.Lease, l.Task, l.Worker,
			time.Duration(l.AgeNS).Round(time.Millisecond),
			time.Duration(l.ProgressAgeNS).Round(time.Millisecond))
	}
	return nil
}

// showFleet fetches a broker's /v2/fleet and renders the live
// worker/lease view; watch > 0 re-renders on that interval until the
// context cancels (a minimal fleet top).
func showFleet(ctx context.Context, addr string, jsonOut bool, watch time.Duration) error {
	base := httpBase(addr)
	for {
		var fs api.FleetStatus
		if err := fetchJSON(ctx, addr, base+remote.FleetPath, &fs); err != nil {
			return err
		}
		if err := api.CheckProto(fs.Proto); err != nil {
			return fmt.Errorf("broker %s: %w", addr, err)
		}
		if jsonOut {
			buf, err := json.MarshalIndent(fs, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(buf))
		} else {
			if watch > 0 {
				fmt.Print("\x1b[2J\x1b[H") // clear the screen between frames
			}
			renderFleet(fs, base)
		}
		if watch <= 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(watch):
		}
	}
}

// renderFleet prints one frame of the fleet view.
func renderFleet(fs api.FleetStatus, base string) {
	fmt.Printf("fleet      %s (proto %s, %d workers)\n", base, fs.Proto, len(fs.Workers))
	if len(fs.Workers) == 0 {
		fmt.Println("           no workers registered")
		return
	}
	for _, w := range fs.Workers {
		drain := ""
		if w.Draining {
			drain = " DRAINING"
		}
		fmt.Printf("worker     %-12s capacity %d, %d leases, last seen %v ago%s\n",
			w.Name, w.Capacity, len(w.Leases),
			time.Duration(w.LastSeenAgeNS).Round(time.Millisecond), drain)
		for _, l := range w.Leases {
			prog := "no progress reported"
			if p := l.Progress; p != nil {
				prog = p.Stage
				if p.Total > 0 {
					prog = fmt.Sprintf("%s %d/%d", p.Stage, p.Done, p.Total)
				} else if p.Done > 0 {
					prog = fmt.Sprintf("%s %d", p.Stage, p.Done)
				}
				prog = fmt.Sprintf("%s, %v ago", prog, time.Duration(l.ProgressAgeNS).Round(time.Millisecond))
			}
			tenant := ""
			if l.Tenant != "" {
				tenant = " tenant " + l.Tenant
			}
			fmt.Printf("  lease    %-10s %s[%d]%s age %v, %s\n",
				l.ID, l.Job, l.Shard, tenant,
				time.Duration(l.AgeNS).Round(time.Millisecond), prog)
		}
	}
}

// promoteBroker asks the standby broker at addr to promote itself to
// primary — the operator half of a planned failover.
func promoteBroker(ctx context.Context, addr, token string) error {
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	var rep api.PromoteReply
	if err := remote.PostJSON(ctx, http.DefaultClient, httpBase(addr)+remote.PromotePath,
		api.PromoteRequest{Proto: api.Version, Token: token}, &rep); err != nil {
		return fmt.Errorf("broker %s: %w", addr, err)
	}
	if err := api.CheckProto(rep.Proto); err != nil {
		return fmt.Errorf("broker %s: %w", addr, err)
	}
	fmt.Printf("broker %s promoted to %s at epoch %d (%d leases requeued)\n",
		addr, rep.Role, rep.Epoch, rep.Requeued)
	return nil
}

// firstAddr picks the first entry of a (possibly comma-separated)
// broker list: the introspection and promote verbs target one broker.
func firstAddr(addr string) string {
	return strings.TrimSpace(strings.Split(addr, ",")[0])
}

// httpBase normalizes a daemon address flag into a base URL.
func httpBase(addr string) string {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimRight(base, "/")
}

// fetchJSON GETs one introspection endpoint and decodes the reply.
func fetchJSON(ctx context.Context, addr, url string, out any) error {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("broker %s: %w", addr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("broker %s: %w", addr, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("broker %s: %s: %s", addr, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("broker %s: decode: %w", addr, err)
	}
	return nil
}

// buildCache resolves the caching flags: disabled, in-memory (the
// default, deduping within this run) or disk-backed (shared across runs
// and processes, stamped with experiments.CacheVersion).
func buildCache(cfg config) (*engine.Cache, error) {
	switch {
	case cfg.noCache:
		if cfg.requireCached {
			return nil, fmt.Errorf("-require-cached is meaningless with -no-cache")
		}
		return nil, nil
	case cfg.cacheDir != "":
		return engine.OpenDiskCache(cfg.cacheDir, experiments.CacheVersion)
	default:
		return engine.NewCache(), nil
	}
}

// jobFilter turns the -exp flag into engine filter patterns. Bare
// experiment ids (no '/') apply across every registered preset.
func jobFilter(exp string) []string {
	var pats []string
	for _, pat := range experiments.SplitList(exp) {
		if pat != "all" && !strings.Contains(pat, "/") {
			pat = "*/" + pat
		}
		pats = append(pats, pat)
	}
	return pats
}
