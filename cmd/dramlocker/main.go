// Command dramlocker regenerates the paper's tables and figures by
// running experiment jobs through the internal/engine worker pool.
//
// Usage:
//
//	dramlocker -exp table1
//	dramlocker -exp fig8a -preset small
//	dramlocker -exp 'fig8*' -preset tiny,small -workers 8
//	dramlocker -exp all -preset tiny -json
//	dramlocker -list
//
// Experiments: fig1a fig1b mc table1 fig7a fig7b defense fig8a fig8b
// fig8pta table2 perf all, or any glob over the full job names
// ("<preset>/<experiment>", e.g. "tiny/fig8a"). Presets: tiny small
// paper (see internal/experiments). -workers 0 uses every CPU; -workers 1
// reproduces the old serial behavior.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids or globs (fig1a fig1b mc table1 fig7a fig7b defense fig8a fig8b fig8pta table2 perf all)")
	preset := flag.String("preset", "small", "comma-separated scale presets (tiny small paper)")
	workers := flag.Int("workers", 0, "worker-pool size (0 = number of CPUs, 1 = serial)")
	jsonOut := flag.Bool("json", false, "emit the structured JSON report instead of text")
	list := flag.Bool("list", false, "list the registered jobs and exit")
	quiet := flag.Bool("quiet", false, "suppress per-job progress on stderr")
	flag.Parse()

	if err := run(*exp, *preset, *workers, *jsonOut, *list, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(exp, preset string, workers int, jsonOut, list, quiet bool) error {
	presets := dedupe(splitList(preset))
	if len(presets) == 0 {
		return fmt.Errorf("no preset given (want a comma-separated subset of %s)",
			strings.Join(experiments.PresetNames(), ","))
	}
	reg := engine.NewRegistry()
	for _, name := range presets {
		p, err := experiments.PresetByName(name)
		if err != nil {
			return err
		}
		if err := experiments.RegisterJobs(reg, p); err != nil {
			return err
		}
	}

	if list {
		for _, j := range reg.Jobs() {
			fmt.Printf("%-16s %s\n", j.Name, j.Title)
		}
		return nil
	}

	opts := engine.Options{
		Workers: workers,
		Filter:  jobFilter(exp),
		// The cache dedupes the preset-free experiments (fig1b, table1,
		// fig7a, fig7b) across a multi-preset run.
		Cache: engine.NewCache(),
	}
	if !quiet {
		opts.OnDone = func(r engine.Result) {
			status := "done"
			if r.Failed() {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "%-8s %-16s %v\n", status, r.Name, r.Duration.Round(time.Millisecond))
		}
	}

	rep, err := engine.Run(reg, opts)
	if err != nil {
		return err
	}
	if jsonOut {
		buf, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(buf))
	} else {
		fmt.Print(rep.Text())
	}
	return rep.Err()
}

// jobFilter turns the -exp flag into engine filter patterns. Bare
// experiment ids (no '/') apply across every registered preset.
func jobFilter(exp string) []string {
	var pats []string
	for _, pat := range splitList(exp) {
		if pat != "all" && !strings.Contains(pat, "/") {
			pat = "*/" + pat
		}
		pats = append(pats, pat)
	}
	return pats
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// dedupe drops repeated items, keeping first-seen order.
func dedupe(items []string) []string {
	seen := make(map[string]bool, len(items))
	var out []string
	for _, it := range items {
		if !seen[it] {
			seen[it] = true
			out = append(out, it)
		}
	}
	return out
}
