// Command dramlocker runs the paper's experiments and prints paper-style
// tables and curve data.
//
// Usage:
//
//	dramlocker -exp table1
//	dramlocker -exp fig8a -preset small
//	dramlocker -exp all -preset tiny
//
// Experiments: fig1a fig1b mc table1 fig7a fig7b fig8a fig8b fig8pta
// table2 all. Presets: tiny small paper (see internal/experiments).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1a fig1b mc table1 fig7a fig7b fig8a fig8b fig8pta table2 all)")
	preset := flag.String("preset", "small", "scale preset (tiny small paper)")
	flag.Parse()

	p, err := experiments.PresetByName(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"fig1b", "mc", "table1", "fig7a", "fig7b", "fig1a", "fig8a", "fig8b", "fig8pta", "table2", "perf"}
	}
	for _, id := range ids {
		start := time.Now()
		out, err := run(id, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (preset %s, %v) ===\n%s\n", id, p.Name, time.Since(start).Round(time.Millisecond), out)
	}
}

func run(id string, p experiments.Preset) (string, error) {
	switch id {
	case "fig1a":
		r, err := experiments.Fig1a(p)
		if err != nil {
			return "", err
		}
		return experiments.FormatFig1a(r), nil
	case "fig1b":
		rows, err := experiments.Fig1b()
		if err != nil {
			return "", err
		}
		return experiments.FormatFig1b(rows), nil
	case "mc":
		rows, err := experiments.MonteCarlo(p)
		if err != nil {
			return "", err
		}
		return experiments.FormatMonteCarlo(rows), nil
	case "table1":
		return experiments.FormatTable1(experiments.Table1()), nil
	case "fig7a":
		curves, err := experiments.Fig7aData()
		if err != nil {
			return "", err
		}
		return experiments.FormatFig7a(curves), nil
	case "fig7b":
		bars, err := experiments.Fig7bData()
		if err != nil {
			return "", err
		}
		return experiments.FormatFig7b(bars), nil
	case "fig8a":
		r, err := experiments.Fig8(p, experiments.ArchResNet20, 10)
		if err != nil {
			return "", err
		}
		return experiments.FormatFig8(r), nil
	case "fig8b":
		r, err := experiments.Fig8(p, experiments.ArchVGG11, 100)
		if err != nil {
			return "", err
		}
		return experiments.FormatFig8(r), nil
	case "fig8pta":
		r, err := experiments.Fig8PTA(p)
		if err != nil {
			return "", err
		}
		return experiments.FormatFig8PTA(r), nil
	case "table2":
		rows, err := experiments.Table2(p, experiments.DefaultTable2Config(p))
		if err != nil {
			return "", err
		}
		return experiments.FormatTable2(rows), nil
	case "perf":
		r, err := experiments.Perf(p)
		if err != nil {
			return "", err
		}
		return experiments.FormatPerf(r), nil
	default:
		return "", fmt.Errorf("unknown experiment %q", id)
	}
}
