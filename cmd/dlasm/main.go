// Command dlasm assembles, disassembles and executes DRAM-Locker ISA
// programs (the 16-bit instruction set of paper Fig. 5).
//
// Usage:
//
//	dlasm -mode asm   -in prog.s            # assemble to hex words
//	dlasm -mode dis   -words 4100,4001,c000 # disassemble
//	dlasm -mode run   -in prog.s            # execute a SWAP-style program
//	dlasm -mode swap                        # print the canonical SWAP
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/rowclone"
)

func main() {
	mode := flag.String("mode", "swap", "asm | dis | run | swap")
	in := flag.String("in", "", "assembler source file (stdin if empty)")
	words := flag.String("words", "", "comma-separated hex words for -mode dis")
	flag.Parse()

	if err := run(*mode, *in, *words); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func readSource(in string) (string, error) {
	if in == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(in)
	return string(b), err
}

func run(mode, in, words string) error {
	switch mode {
	case "asm":
		src, err := readSource(in)
		if err != nil {
			return err
		}
		prog, err := isa.Assemble(src)
		if err != nil {
			return err
		}
		enc, err := isa.EncodeProgram(prog)
		if err != nil {
			return err
		}
		for i, w := range enc {
			fmt.Printf("%04x  %s\n", w, prog[i])
		}
		return nil

	case "dis":
		if words == "" {
			return fmt.Errorf("dlasm: -mode dis needs -words")
		}
		for _, tok := range strings.Split(words, ",") {
			w, err := strconv.ParseUint(strings.TrimSpace(tok), 16, 16)
			if err != nil {
				return fmt.Errorf("dlasm: word %q: %w", tok, err)
			}
			fmt.Println(isa.Decode(uint16(w)))
		}
		return nil

	case "run":
		src, err := readSource(in)
		if err != nil {
			return err
		}
		prog, err := isa.Assemble(src)
		if err != nil {
			return err
		}
		return execute(prog)

	case "swap":
		prog := isa.SwapProgram()
		fmt.Println("; canonical three-copy SWAP (paper Fig. 4(b))")
		fmt.Println(isa.Disassemble(prog))
		enc, err := isa.EncodeProgram(prog)
		if err != nil {
			return err
		}
		fmt.Print("; words:")
		for _, w := range enc {
			fmt.Printf(" %04x", w)
		}
		fmt.Println()
		return execute(prog)

	default:
		return fmt.Errorf("dlasm: unknown mode %q", mode)
	}
}

// execute runs the program on a scratch device with the canonical
// registers bound to demonstration rows.
func execute(prog []isa.Instruction) error {
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		return err
	}
	clone, err := rowclone.New(dev, rowclone.DefaultConfig())
	if err != nil {
		return err
	}
	seq := isa.NewSequencer(clone)
	locked := dram.RowAddr{Bank: 0, Row: 5}
	unlocked := dram.RowAddr{Bank: 0, Row: 9}
	buffer := dram.RowAddr{Bank: 0, Row: 63}
	if err := dev.PokeRow(locked, []byte("LOCKED")); err != nil {
		return err
	}
	if err := dev.PokeRow(unlocked, []byte("free")); err != nil {
		return err
	}
	for reg, row := range map[uint8]dram.RowAddr{
		isa.RegLocked: locked, isa.RegUnlocked: unlocked, isa.RegBuffer: buffer,
	} {
		if err := seq.BindRow(reg, row); err != nil {
			return err
		}
	}
	if err := seq.BindCounter(isa.RegCounter, 1); err != nil {
		return err
	}
	res, err := seq.Run(prog)
	if err != nil {
		return err
	}
	a, _ := dev.PeekRow(locked)
	b, _ := dev.PeekRow(unlocked)
	fmt.Printf("executed: %d uops, %d copies, latency %v\n", res.Steps, res.Copies, res.Latency)
	fmt.Printf("R%d (locked row)   now: %q\n", isa.RegLocked, strings.TrimRight(string(a[:8]), "\x00"))
	fmt.Printf("R%d (unlocked row) now: %q\n", isa.RegUnlocked, strings.TrimRight(string(b[:8]), "\x00"))
	return nil
}
