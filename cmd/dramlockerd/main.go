// Command dramlockerd is the remote worker daemon: it serves this
// repository's experiment jobs to dramlocker schedulers over HTTP, so a
// run can fan its shards out across machines.
//
// Usage:
//
//	dramlockerd                                  # all presets on 127.0.0.1:9740
//	dramlockerd -addr 0.0.0.0:9740 -capacity 8
//	dramlockerd -preset tiny,small -name rack7
//
// The daemon builds the same job registry as the CLI (one job per preset
// × experiment, shards included) and executes the tasks a scheduler
// POSTs to /v1/execute; GET /v1/status reports identity, registry size
// and load. Tasks arrive as (job name, shard index, seed, cache-key stem)
// — internal/api, protocol version dlexec1 — and the daemon refuses any
// task whose cache key its own registry cannot reproduce, so a worker
// built from different preset knobs or experiment code can never feed a
// scheduler's cache. Results, ordering, merging and caching all stay on
// the scheduler side; the daemon is stateless between tasks and keeps no
// result cache of its own.
//
// -capacity bounds concurrent task executions (default: NumCPU). The
// compute kernels inside each task share the process-wide internal/par
// worker budget exactly as in the CLI, so a saturated daemon runs serial
// kernels inside parallel tasks. SIGINT/SIGTERM drain in-flight tasks
// and exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/remote"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9740", "listen address (host:port)")
	preset := flag.String("preset", "tiny,small,paper", "comma-separated presets whose jobs this worker serves")
	name := flag.String("name", "", "worker name advertised in /v1/status (default: hostname)")
	capacity := flag.Int("capacity", 0, "max concurrent task executions (0 = number of CPUs)")
	flag.Parse()

	if err := run(*addr, *preset, *name, *capacity); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr, preset, name string, capacity int) error {
	reg, err := experiments.BuildRegistry(experiments.SplitList(preset))
	if err != nil {
		return err
	}
	if name == "" {
		if name, err = os.Hostname(); err != nil || name == "" {
			name = "dramlockerd"
		}
	}
	if capacity <= 0 {
		capacity = runtime.NumCPU()
	}

	// Bind before announcing, so ":0" resolves to a concrete port and the
	// log line doubles as a readiness signal (the e2e gate relies on it).
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: remote.NewServer(reg, name, capacity)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	log.Printf("dramlockerd %q serving %d jobs on %s (capacity %d, proto %s)",
		name, reg.Len(), ln.Addr(), capacity, remote.ProtoVersion)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Drain: let in-flight tasks finish before exiting; the grace period
	// bounds the wait, and releasing the signal handler here means a
	// second Ctrl-C hard-exits immediately.
	stop()
	log.Printf("dramlockerd: shutting down (draining in-flight tasks)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
