// Command dramlockerd is the distributed-execution daemon. It runs in
// one of three modes:
//
//	dramlockerd                                  # push worker on 127.0.0.1:9740
//	dramlockerd -addr 0.0.0.0:9740 -capacity 8
//	dramlockerd -preset tiny,small -name rack7
//	dramlockerd -broker -addr 0.0.0.0:9741       # job-queue broker
//	dramlockerd -broker -hedge-after 2m -weights ci=1,interactive=4
//	dramlockerd -broker -journal-dir /var/lib/dramlocker -max-queued 1000
//	dramlockerd -broker -follow 10.0.0.9:9741    # hot standby replicating that primary
//	dramlockerd -broker -follow 10.0.0.9:9741 -takeover-after 10s
//	dramlockerd -pull 10.0.0.9:9741              # pull worker for that broker
//	dramlockerd -pull 10.0.0.9:9741,10.0.0.10:9741   # with broker failover
//	dramlockerd -result-plane -addr 0.0.0.0:9742 # content-addressed result plane
//	dramlockerd -broker -result-plane            # broker + co-hosted plane
//	dramlockerd -pull 10.0.0.9:9741 -plane 10.0.0.9:9742   # plane-attached worker
//
// Push worker (default): builds the same job registry as the CLI (one
// job per preset × experiment, shards included) and executes the tasks a
// scheduler POSTs to /v1/execute; GET /v1/status reports identity,
// registry size, protocol and drain state. Tasks arrive as (job name,
// shard index, seed, cache-key stem) — internal/api, protocol dlexec2 —
// and the daemon refuses any task whose cache key its own registry
// cannot reproduce, so a worker built from different preset knobs or
// experiment code can never feed a scheduler's cache.
//
// Broker (-broker): serves the dlexec2 job queue instead — schedulers
// submit jobs (dramlocker -broker), workers register and pull leases
// (dramlockerd -pull). The broker executes nothing and holds no
// registry; it routes opaque tasks with weighted per-tenant fairness
// (-weights tenant=N,...), requeues tasks whose lease expires
// (-lease-ttl), and hedges stragglers onto idle workers (-hedge-after,
// 0 disables). GET /v1/status answers with role "broker". With
// -journal-dir the backlog is crash-safe: submissions, completions and
// cancels are fsynced to an append-only journal and replayed (then
// compacted) on restart, so a SIGKILLed broker resumes where it died.
// -max-queued (and per-tenant -max-queued-tenant overrides, in the
// -weights syntax) caps each tenant's pending queue; submissions past
// the cap get the retryable queue_full error. -max-submit-rate (and
// -max-submit-rate-tenant) bounds each tenant's sustained submission
// rate with a token bucket; overflow gets the retryable rate_limited
// error carrying the broker's own Retry-After estimate. The journal's
// active segment rotates past -journal-max-bytes and sealed segments
// are compacted in the background, so the directory stays bounded
// under load. GET /v2/metrics exports the queue census, journal
// counters and per-tenant gauges as JSON or (?format=prometheus)
// Prometheus text.
//
// High availability (-broker -follow PRIMARY): the broker starts as a
// hot standby — it streams the primary's journal over /v2/replicate
// into its own journal and in-memory state, answers read-only routes
// (status, metrics, fleet, job status) and refuses mutations with the
// retryable not_leader error naming the primary. It promotes to
// primary on POST /v2/promote, on SIGUSR1, or — with -takeover-after —
// after the primary has been silent that long; promotion bumps the
// fencing epoch, requeues inherited leases, and fences the ex-primary
// (POST /v2/fence) so a zombie that comes back refuses mutations
// instead of splitting the brain. -advertise names the address
// clients should be redirected to (default: the listen address).
// -ha-token gates /v2/promote and /v2/fence behind a shared secret
// (give every broker peer, and the promoting operator, the same
// value); without it those endpoints accept any caller that reaches
// the port, so keep it reachable by broker peers only.
// Clients and workers take comma-separated broker lists and follow
// not_leader hints automatically.
//
// -fault-plan loads a faultinject JSON plan (chaos testing: dropped or
// delayed requests, torn journal writes) and is refused unless
// -allow-faults is also set, so the flag cannot leak into production
// quietly. On exit every mode logs a receipt line with the
// process-wide backoff count and which faults actually fired.
//
// Pull worker (-pull broker-addr): registers with a broker and works
// its queue — poll, execute against the local registry, renew, report.
// Membership is dynamic: workers join and leave freely, and a worker
// that dies mid-lease is recovered by lease expiry.
//
// Result plane (-result-plane): serves the fleet-wide content-addressed
// result store (internal/resultplane) — GET/PUT of versioned cache
// entries plus claim-based cross-machine single-flight. Standalone it
// owns the listen address; combined with -broker the /v3 object routes
// co-host on the broker's mux and the broker consults the store before
// dispatching, completing fully cached tasks at submit with zero
// leases. -plane-dir persists the store as JSON lines (replayed on
// restart); without it the plane is in-memory.
//
// Workers (push or pull) attach to a plane with -plane ADDR: task
// results are looked up plane-first (then the local in-process cache,
// then computed) and written through, with the plane's claim API
// ensuring only one worker in the fleet computes a given key. A dead
// or unreachable plane degrades to plain local execution.
//
// In every mode SIGINT/SIGTERM drain before exit: a push worker flips
// /v1/status to draining and refuses new tasks while in-flight ones
// finish; a broker refuses new submissions and registrations; a pull
// worker tells the broker to stop offering it leases and reports what
// it already holds. Results, ordering, merging and caching all stay on
// the scheduler side; daemons are stateless between tasks and keep no
// result cache of their own.
//
// -capacity bounds concurrent task executions (default: NumCPU). The
// compute kernels inside each task share the process-wide internal/par
// worker budget exactly as in the CLI, so a saturated daemon runs serial
// kernels inside parallel tasks.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/backoff"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/queue"
	"repro/internal/remote"
	"repro/internal/resultplane"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9740", "listen address (host:port); ignored with -pull")
	preset := flag.String("preset", "tiny,small,paper", "comma-separated presets whose jobs this worker serves; ignored with -broker")
	name := flag.String("name", "", "daemon name advertised in /v1/status (default: hostname)")
	capacity := flag.Int("capacity", 0, "max concurrent task executions (0 = number of CPUs)")
	broker := flag.Bool("broker", false, "run the job-queue broker instead of a push worker")
	pull := flag.String("pull", "", "run a pull worker against the broker at this address instead of a push worker")
	leaseTTL := flag.Duration("lease-ttl", queue.DefaultLeaseTTL, "broker: lease duration before an unrenewed task requeues")
	hedgeAfter := flag.Duration("hedge-after", 0, "broker: duplicate a straggling task onto an idle worker after this long (0 = off)")
	weights := flag.String("weights", "", "broker: per-tenant fairness weights, tenant=N[,tenant=N...] (absent tenants weigh 1)")
	journalDir := flag.String("journal-dir", "", "broker: journal submissions/results under this directory and replay them on startup (empty = in-memory only)")
	journalMaxBytes := flag.Int64("journal-max-bytes", 64<<20, "broker: rotate the journal's active segment past this size and compact sealed segments in the background (0 = never rotate)")
	maxQueued := flag.Int("max-queued", 0, "broker: per-tenant pending-task limit; submissions past it get queue_full (0 = unlimited)")
	maxQueuedTenant := flag.String("max-queued-tenant", "", "broker: per-tenant overrides of -max-queued, tenant=N[,tenant=N...] (0 = unlimited for that tenant)")
	maxSubmitRate := flag.Int("max-submit-rate", 0, "broker: per-tenant sustained submission rate in tasks/sec (token bucket, burst of one second); overflow gets rate_limited with Retry-After (0 = unlimited)")
	maxSubmitRateTenant := flag.String("max-submit-rate-tenant", "", "broker: per-tenant overrides of -max-submit-rate, tenant=N[,tenant=N...] (0 = unlimited for that tenant)")
	follow := flag.String("follow", "", "broker: start as a hot standby replicating the primary at this address; promote via /v2/promote, SIGUSR1, or -takeover-after")
	takeoverAfter := flag.Duration("takeover-after", 0, "broker standby: promote automatically after the primary has been unreachable this long (0 = operator-only promotion)")
	advertise := flag.String("advertise", "", "broker: client-reachable address stamped into not_leader redirects and fencing records (default: the listen address)")
	haToken := flag.String("ha-token", "", "broker: shared secret required on /v2/promote and /v2/fence; set it on every broker peer (empty = unauthenticated — keep the port reachable by broker peers only)")
	resultPlane := flag.Bool("result-plane", false, "serve the content-addressed result plane (standalone, or co-hosted with -broker)")
	planeDir := flag.String("plane-dir", "", "result plane: persist entries as JSON lines under this directory and replay them on startup (empty = in-memory only)")
	planeMaxBytes := flag.Int64("plane-max-bytes", 0, "result plane: evict least-recently-used entries past this many stored bytes (0 = unlimited)")
	planeTTL := flag.Duration("plane-ttl", 0, "result plane: evict entries idle longer than this (0 = keep forever)")
	planeAddr := flag.String("plane", "", "worker modes: attach to the result plane at this address (plane-first lookups, write-through, fleet-wide single-flight)")
	faultPlan := flag.String("fault-plan", "", "chaos testing: inject faults from this JSON plan (refused without -allow-faults)")
	allowFaults := flag.Bool("allow-faults", false, "acknowledge that -fault-plan deliberately breaks this daemon")
	flag.Parse()

	if *broker && *pull != "" {
		fmt.Fprintln(os.Stderr, "dramlockerd: -broker and -pull are mutually exclusive")
		os.Exit(1)
	}
	if *resultPlane && *pull != "" {
		fmt.Fprintln(os.Stderr, "dramlockerd: -result-plane and -pull are mutually exclusive (a plane serves; a pull worker attaches with -plane)")
		os.Exit(1)
	}
	if *planeAddr != "" && (*broker || *resultPlane) {
		fmt.Fprintln(os.Stderr, "dramlockerd: -plane attaches a worker to a plane; server modes use -result-plane")
		os.Exit(1)
	}
	if *follow != "" && !*broker {
		fmt.Fprintln(os.Stderr, "dramlockerd: -follow is a broker mode; add -broker")
		os.Exit(1)
	}
	var faults *faultinject.Injector
	if *faultPlan != "" {
		if !*allowFaults {
			fmt.Fprintln(os.Stderr, "dramlockerd: -fault-plan deliberately injects failures; refusing without -allow-faults")
			os.Exit(1)
		}
		plan, err := faultinject.LoadPlan(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dramlockerd:", err)
			os.Exit(1)
		}
		faults = faultinject.New(plan)
		log.Printf("dramlockerd: FAULT INJECTION ACTIVE: %s (%d rules, seed %d)", *faultPlan, len(plan.Rules), plan.Seed)
	}
	bf := brokerFlags{
		leaseTTL:            *leaseTTL,
		hedgeAfter:          *hedgeAfter,
		weights:             *weights,
		journalDir:          *journalDir,
		journalMaxBytes:     *journalMaxBytes,
		maxQueued:           *maxQueued,
		maxQueuedTenant:     *maxQueuedTenant,
		maxSubmitRate:       *maxSubmitRate,
		maxSubmitRateTenant: *maxSubmitRateTenant,
		follow:              *follow,
		takeoverAfter:       *takeoverAfter,
		advertise:           *advertise,
		haToken:             *haToken,
	}
	pf := planeFlags{serve: *resultPlane, dir: *planeDir, attach: *planeAddr,
		maxBytes: *planeMaxBytes, ttl: *planeTTL}
	err := run(*addr, *preset, *name, *capacity, *broker, *pull, bf, pf, faults)
	// The exit receipt: how many backoff delays the process took and
	// which injected faults actually landed. The chaos gate parses this
	// line to bound retry storms.
	log.Printf("dramlockerd: exit: backoff_total=%d faults_fired=%s", backoff.Total(), faults.Summary())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// planeFlags carries the result-plane flags: serve (the plane server,
// standalone or co-hosted), dir (its persistence), attach (a worker's
// upstream plane).
type planeFlags struct {
	serve    bool
	dir      string
	attach   string
	maxBytes int64
	ttl      time.Duration
}

// brokerFlags carries the -broker mode's tuning flags.
type brokerFlags struct {
	leaseTTL            time.Duration
	hedgeAfter          time.Duration
	weights             string
	journalDir          string
	journalMaxBytes     int64
	maxQueued           int
	maxQueuedTenant     string
	maxSubmitRate       int
	maxSubmitRateTenant string
	follow              string
	takeoverAfter       time.Duration
	advertise           string
	haToken             string
}

func run(addr, preset, name string, capacity int, broker bool, pull string, bf brokerFlags, pf planeFlags, faults *faultinject.Injector) error {
	var err error
	if name == "" {
		if name, err = os.Hostname(); err != nil || name == "" {
			name = "dramlockerd"
		}
	}
	if capacity <= 0 {
		capacity = runtime.NumCPU()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if broker {
		w, err := parseTenantInts("-weights", bf.weights, 1)
		if err != nil {
			return err
		}
		limits, err := parseTenantInts("-max-queued-tenant", bf.maxQueuedTenant, 0)
		if err != nil {
			return err
		}
		rates, err := parseTenantInts("-max-submit-rate-tenant", bf.maxSubmitRateTenant, 0)
		if err != nil {
			return err
		}
		return runBroker(ctx, stop, addr, name, bf, pf, queue.Config{
			LeaseTTL:            bf.leaseTTL,
			HedgeAfter:          bf.hedgeAfter,
			Weights:             w,
			MaxQueued:           bf.maxQueued,
			MaxQueuedTenant:     limits,
			MaxSubmitRate:       bf.maxSubmitRate,
			MaxSubmitRateTenant: rates,
			Follower:            bf.follow != "",
			PrimaryAddr:         bf.follow,
		}, faults)
	}
	if pf.serve {
		return runPlane(ctx, stop, addr, name, pf, faults)
	}

	reg, err := experiments.BuildRegistry(experiments.SplitList(preset))
	if err != nil {
		return err
	}

	if pull != "" {
		var client *http.Client
		if faults != nil {
			client = &http.Client{Transport: &faultinject.Transport{Inj: faults}}
		}
		opts := remote.WorkerOptions{
			Name:     name,
			Capacity: capacity,
			Client:   client,
		}
		if pf.attach != "" {
			opts.Executor = planeExecutor(reg, name, pf.attach, faults)
			log.Printf("dramlockerd %q attached to result plane %s", name, pf.attach)
		}
		w := remote.NewPullWorker(pull, reg, opts)
		log.Printf("dramlockerd %q pulling from broker %s (%d jobs, capacity %d, proto %s)",
			name, pull, reg.Len(), capacity, remote.ProtoVersion)
		if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
		log.Printf("dramlockerd: drained, exiting")
		return nil
	}

	// Push worker: bind before announcing, so ":0" resolves to a concrete
	// port and the log line doubles as a readiness signal (the e2e gate
	// relies on it).
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ws := remote.NewServer(reg, name, capacity)
	if pf.attach != "" {
		ws.SetExecutor(planeExecutor(reg, name, pf.attach, faults))
		log.Printf("dramlockerd %q attached to result plane %s", name, pf.attach)
	}
	srv := &http.Server{Handler: faultinject.Middleware(ws, faults)}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	log.Printf("dramlockerd %q serving %d jobs on %s (capacity %d, proto %s)",
		name, reg.Len(), ln.Addr(), capacity, remote.ProtoVersion)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Drain: advertise it (schedulers route around a draining worker),
	// let in-flight tasks finish, bound the wait; releasing the signal
	// handler here means a second Ctrl-C hard-exits immediately.
	stop()
	ws.Drain()
	log.Printf("dramlockerd: shutting down (draining in-flight tasks)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// runBroker serves the job queue until a signal, then drains. With a
// journal dir the backlog is crash-safe: submissions, completions and
// cancels are journaled (fsynced before the reply) and replayed on the
// next startup.
func runBroker(ctx context.Context, stop context.CancelFunc, addr, name string, bf brokerFlags, pf planeFlags, cfg queue.Config, faults *faultinject.Injector) error {
	journalDir := bf.journalDir
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if journalDir != "" {
		jl, err := queue.OpenJournal(journalDir, bf.journalMaxBytes)
		if err != nil {
			return err
		}
		defer jl.Close()
		jl.SetFaults(faults)
		cfg.Journal = jl
	}
	// Co-hosted result plane: the /v3 object routes share the broker's
	// listener, and the broker answers fully cached tasks from the store
	// at submit — zero leases for warm work.
	var store *resultplane.Store
	if pf.serve {
		if store, err = openPlaneStore(pf.dir); err != nil {
			return err
		}
		defer store.Close()
		store.SetLimits(pf.maxBytes, pf.ttl)
		cfg.Plane = &resultplane.StorePlane{S: store, Version: experiments.CacheVersion}
	}
	b := queue.New(cfg)
	if m := b.Metrics(); m.Journal != nil {
		log.Printf("dramlockerd: journal %s: replayed %d jobs / %d tasks (%d requeued, %d completed, %d lines skipped)",
			journalDir, m.Journal.ReplayedJobs, m.Journal.ReplayedTasks,
			m.Journal.Requeued, m.Completed, m.Journal.Skipped)
	}
	bs := remote.NewBrokerServer(b, name)
	bs.SetHAToken(bf.haToken)
	var handler http.Handler = bs
	if store != nil {
		bs.SetPlaneMetrics(store.Metrics)
		mux := http.NewServeMux()
		resultplane.NewServer(store, name).Routes(mux)
		mux.Handle("/", bs)
		handler = mux
		log.Printf("dramlockerd %q co-hosting result plane (%d entries, version %s)",
			name, store.Metrics().Entries, experiments.CacheVersion)
	}
	// Hot standby: replicate the primary's journal into this broker and
	// arm the promotion paths (/v2/promote, SIGUSR1, silence timeout)
	// before the listener opens, so a promote cannot race the mux.
	if bf.follow != "" {
		followBase := bf.follow
		if !strings.Contains(followBase, "://") {
			followBase = "http://" + followBase
		}
		adv := bf.advertise
		if adv == "" {
			adv = ln.Addr().String()
		}
		var fclient *http.Client
		if faults != nil {
			fclient = &http.Client{Transport: &faultinject.Transport{Inj: faults}}
		}
		fol := remote.NewFollower(b, followBase, remote.FollowerOptions{
			Client:        fclient,
			TakeoverAfter: bf.takeoverAfter,
			Name:          name,
			Advertise:     adv,
			Token:         bf.haToken,
		})
		bs.SetPromote(fol.Promote)
		go func() {
			if err := fol.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("dramlockerd %q follower loop: %v", name, err)
			}
		}()
		usr1 := make(chan os.Signal, 1)
		signal.Notify(usr1, syscall.SIGUSR1)
		defer signal.Stop(usr1)
		go func() {
			for range usr1 {
				if _, err := fol.Promote("SIGUSR1"); err != nil {
					log.Printf("dramlockerd %q promote: %v", name, err)
				}
			}
		}()
		log.Printf("dramlockerd %q standby following %s (takeover-after %v, advertise %s)",
			name, followBase, bf.takeoverAfter, adv)
	}
	srv := &http.Server{Handler: faultinject.Middleware(handler, faults)}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	log.Printf("dramlockerd %q brokering on %s (lease %v, hedge %v, proto %s)",
		name, ln.Addr(), cfg.LeaseTTL, cfg.HedgeAfter, remote.ProtoVersion)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	bs.Drain()
	log.Printf("dramlockerd: broker draining (no new submissions)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// runPlane serves a standalone result plane until a signal. The plane
// has no drain protocol — entries are immutable objects and every
// client degrades to local compute when it vanishes — so shutdown just
// stops the listener and seals the store.
func runPlane(ctx context.Context, stop context.CancelFunc, addr, name string, pf planeFlags, faults *faultinject.Injector) error {
	store, err := openPlaneStore(pf.dir)
	if err != nil {
		return err
	}
	defer store.Close()
	store.SetLimits(pf.maxBytes, pf.ttl)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ps := resultplane.NewServer(store, name)
	srv := &http.Server{Handler: faultinject.Middleware(ps.Handler(), faults)}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	log.Printf("dramlockerd %q result plane on %s (%d entries, version %s, proto %s)",
		name, ln.Addr(), store.Metrics().Entries, experiments.CacheVersion, remote.ProtoVersion)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("dramlockerd: result plane shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// openPlaneStore opens the plane store, persistent when dir is set.
func openPlaneStore(dir string) (*resultplane.Store, error) {
	if dir == "" {
		return resultplane.NewStore(), nil
	}
	return resultplane.Open(dir)
}

// planeExecutor stacks the plane-attached cache over the local
// executor: plane first, in-process cache second, compute last, with
// computed results written through and the plane's claim API keeping
// each key's computation single-flighted across the whole fleet.
func planeExecutor(reg *engine.Registry, name, addr string, faults *faultinject.Injector) engine.Executor {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := resultplane.NewClient(base, experiments.CacheVersion)
	if faults != nil {
		c.HTTPClient = &http.Client{Transport: &faultinject.Transport{Inj: faults}}
	}
	cache := engine.NewCache()
	cache.SetRemote(&resultplane.EngineCache{C: c})
	return &engine.CachingExecutor{Exec: engine.NewNamedLocalExecutor(reg, name), Cache: cache}
}

// parseTenantInts parses the shared "tenant=N[,tenant=N...]" syntax
// used by -weights and -max-queued-tenant; minVal is the smallest
// accepted N (1 for weights, 0 for queue limits where 0 = unlimited).
func parseTenantInts(flagName, s string, minVal int) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	w := make(map[string]int)
	for _, part := range experiments.SplitList(s) {
		tenant, val, ok := strings.Cut(part, "=")
		if !ok || tenant == "" {
			return nil, fmt.Errorf("dramlockerd: bad %s entry %q (want tenant=N)", flagName, part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < minVal {
			return nil, fmt.Errorf("dramlockerd: bad %s value %q (want an integer >= %d)", flagName, part, minVal)
		}
		w[tenant] = n
	}
	return w, nil
}
