// Command tracegen generates, inspects and replays memory traces through
// the DRAM-Locker controller — the reproduction's gem5-style workload
// stage.
//
// Usage:
//
//	tracegen -mode gen -out trace.txt        # DNN inference + attack trace
//	tracegen -mode replay -in trace.txt      # replay undefended vs defended
//	tracegen -mode replay -in trace.txt -defend=false
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memmap"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/trace"
)

func main() {
	mode := flag.String("mode", "gen", "gen | replay")
	in := flag.String("in", "", "input trace file (replay)")
	out := flag.String("out", "", "output trace file (gen); stdout if empty")
	passes := flag.Int("passes", 2, "inference passes to generate")
	hammers := flag.Int("hammers", 1200, "attacker hammer attempts per aggressor")
	defend := flag.Bool("defend", true, "enable DRAM-Locker during replay")
	flag.Parse()

	if err := run(*mode, *in, *out, *passes, *hammers, *defend); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// buildSystem assembles the default system with a small quantized model
// placed in DRAM, shared by both modes so generated traces replay cleanly.
func buildSystem(defend bool) (*core.System, *memmap.Layout, error) {
	sys, err := core.NewSystem(core.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	qm := quant.NewModel(nn.NewResNet20(10, 0.25, 7))
	opts := memmap.DefaultOptions()
	opts.StartRow = 1
	opts.Avoid = func(a dram.RowAddr) bool { return sys.Controller().IsReserved(a) }
	layout, err := memmap.New(qm, sys.Device(), opts)
	if err != nil {
		return nil, nil, err
	}
	if defend {
		if _, err := sys.ProtectWeights(layout); err != nil {
			return nil, nil, err
		}
	}
	return sys, layout, nil
}

func run(mode, in, out string, passes, hammers int, defend bool) error {
	switch mode {
	case "gen":
		sys, layout, err := buildSystem(false)
		if err != nil {
			return err
		}
		legit := &trace.Trace{}
		for p := 0; p < passes; p++ {
			if err := trace.InferencePass(legit, layout, 64); err != nil {
				return err
			}
		}
		attackT := &trace.Trace{}
		victim := layout.WeightRows()[0]
		for _, agg := range sys.Device().Geometry().Neighbors(victim, 1) {
			trace.HammerBurst(attackT, agg, hammers)
		}
		mixed := trace.Interleave(legit, attackT, 8, 4)

		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		fmt.Fprintf(w, "# dramlocker trace: %d inference passes, %d hammers/aggressor\n", passes, hammers)
		if _, err := mixed.WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "generated %d entries\n", mixed.Len())
		return nil

	case "replay":
		if in == "" {
			return fmt.Errorf("tracegen: -mode replay needs -in")
		}
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Parse(f)
		if err != nil {
			return err
		}
		sys, _, err := buildSystem(defend)
		if err != nil {
			return err
		}
		rs, err := trace.Replay(tr, sys.Controller())
		if err != nil {
			return err
		}
		fmt.Printf("replayed %d requests (defend=%v)\n", rs.Requests, defend)
		fmt.Printf("  denied:          %d\n", rs.Denied)
		fmt.Printf("  swaps:           %d\n", rs.Swaps)
		fmt.Printf("  row hit rate:    %.1f%%\n", rs.RowHitRate()*100)
		fmt.Printf("  total latency:   %v\n", rs.TotalLatency)
		fmt.Printf("  victim latency:  %v\n", rs.VictimLatency)
		fmt.Printf("  energy:          %.1f nJ\n", rs.EnergyPJ/1000)
		fmt.Printf("  flips landed:    %d\n", sys.Hammer().History().TotalFlips)
		return nil

	default:
		return fmt.Errorf("tracegen: unknown mode %q", mode)
	}
}
