package repro

// One benchmark per paper table/figure (DESIGN.md §4) plus ablation
// benches for the design choices of DESIGN.md §5. Each benchmark prints
// the paper-style rows once (so `go test -bench=.` regenerates the
// evaluation) and then times the underlying computation.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/memmap"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/rowhammer"
)

var benchPreset = experiments.Tiny()

// printOnce guards per-benchmark table output so -benchtime reruns do not
// spam the log.
var printOnce sync.Map

func once(b *testing.B, key, out string) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(key, true); !done {
		b.Logf("\n%s", out)
	}
}

// --- Fig. 1 -------------------------------------------------------------------

func BenchmarkFig1aTargetedVsRandom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1a(benchPreset)
		if err != nil {
			b.Fatal(err)
		}
		once(b, "fig1a", experiments.FormatFig1a(r))
	}
}

func BenchmarkFig1bThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig1b()
		if err != nil {
			b.Fatal(err)
		}
		once(b, "fig1b", experiments.FormatFig1b(rows))
	}
}

// --- §IV.D Monte-Carlo ---------------------------------------------------------

func BenchmarkMonteCarloSwap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MonteCarlo(benchPreset)
		if err != nil {
			b.Fatal(err)
		}
		once(b, "mc", experiments.FormatMonteCarlo(rows))
	}
}

func BenchmarkMonteCarloSingleTrial(b *testing.B) {
	p := circuit.Default45nm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := circuit.MonteCarlo(p, 0.2, 100, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table I -------------------------------------------------------------------

func BenchmarkTable1Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports := experiments.Table1()
		once(b, "table1", experiments.FormatTable1(reports))
	}
}

// --- Fig. 7 -------------------------------------------------------------------

func BenchmarkFig7aLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Fig7aData()
		if err != nil {
			b.Fatal(err)
		}
		once(b, "fig7a", experiments.FormatFig7a(curves))
	}
}

func BenchmarkFig7bDefenseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bars, err := experiments.Fig7bData()
		if err != nil {
			b.Fatal(err)
		}
		once(b, "fig7b", experiments.FormatFig7b(bars))
	}
}

// --- Fig. 8 -------------------------------------------------------------------

func BenchmarkFig8aResNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchPreset, experiments.ArchResNet20, 10)
		if err != nil {
			b.Fatal(err)
		}
		once(b, "fig8a", experiments.FormatFig8(r))
	}
}

func BenchmarkFig8bVGG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchPreset, experiments.ArchVGG11, 100)
		if err != nil {
			b.Fatal(err)
		}
		once(b, "fig8b", experiments.FormatFig8(r))
	}
}

func BenchmarkFig8PTA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8PTA(benchPreset)
		if err != nil {
			b.Fatal(err)
		}
		once(b, "fig8pta", experiments.FormatFig8PTA(r))
	}
}

// --- Table II -----------------------------------------------------------------

func BenchmarkTable2Defenses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchPreset, experiments.DefaultTable2Config(benchPreset))
		if err != nil {
			b.Fatal(err)
		}
		once(b, "table2", experiments.FormatTable2(rows))
	}
}

// --- Workload overhead ----------------------------------------------------------

func BenchmarkPerfUnderAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Perf(benchPreset)
		if err != nil {
			b.Fatal(err)
		}
		once(b, "perf", experiments.FormatPerf(r))
	}
}

// --- Micro-benchmarks of the hot primitives -------------------------------------

func newBenchSystem(b *testing.B) *core.System {
	b.Helper()
	sys, err := core.NewSystem(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkLockTableLookup(b *testing.B) {
	sys := newBenchSystem(b)
	for r := 1; r < 30; r += 2 {
		sys.ProtectRow(dram.RowAddr{Bank: 0, Row: r})
	}
	tab := sys.Table()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.IsLocked(dram.RowAddr{Bank: 0, Row: i % 60})
	}
}

func BenchmarkSwapOperation(b *testing.B) {
	sys := newBenchSystem(b)
	ctl := sys.Controller()
	row := dram.RowAddr{Bank: 0, Row: 5}
	phys, err := ctl.Mapper().Untranslate(row, 0)
	if err != nil {
		b.Fatal(err)
	}
	ctl.Write(phys, []byte{1})
	ctl.LockRow(row)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ctl.Read(phys, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHammerAttemptDenied(b *testing.B) {
	sys := newBenchSystem(b)
	row := dram.RowAddr{Bank: 0, Row: 5}
	sys.ProtectRow(row)
	ctl := sys.Controller()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ctl.HammerAttempt(row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRowHammerActivationTracking(b *testing.B) {
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		b.Fatal(err)
	}
	cfg := rowhammer.DefaultConfig()
	cfg.TRH = 1 << 30 // never cross, measure tracking cost only
	if _, err := rowhammer.New(dev, cfg); err != nil {
		b.Fatal(err)
	}
	row := dram.RowAddr{Bank: 0, Row: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Activate(row)
		dev.Precharge(row.Bank)
	}
}

func BenchmarkQuantizedInferenceResNet20(b *testing.B) {
	v, err := experiments.NewVictim(benchPreset, experiments.ArchResNet20, 10)
	if err != nil {
		b.Fatal(err)
	}
	batch := v.AttackBatch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.BatchLoss(v.QM.Net, batch)
	}
}

// --- Ablations (DESIGN.md §5) --------------------------------------------------

// ablationSetup builds a defended system with the given controller tweaks
// and measures how many attack iterations are denied and the victim-side
// swap overhead of a fixed legitimate workload under attack.
func ablationRun(b *testing.B, mut func(*controller.Config), lockWeightsThemselves bool, stride int) (denied int64, swapLat dram.Picoseconds) {
	b.Helper()
	ccfg := core.DefaultConfig()
	ccfg.Hammer.TRH = 40
	if mut != nil {
		mut(&ccfg.Controller)
	}
	sys, err := core.NewSystem(ccfg)
	if err != nil {
		b.Fatal(err)
	}
	qm := quant.NewModel(nn.NewResNet20(4, 0.125, 31))
	opts := memmap.DefaultOptions()
	opts.StartRow = 1
	opts.RowStride = stride
	opts.Avoid = func(a dram.RowAddr) bool { return sys.Controller().IsReserved(a) }
	layout, err := memmap.New(qm, sys.Device(), opts)
	if err != nil {
		b.Fatal(err)
	}
	if lockWeightsThemselves {
		for _, wr := range layout.WeightRows() {
			if err := sys.Controller().LockRow(wr); err != nil {
				b.Fatal(err)
			}
		}
	} else {
		if _, err := sys.ProtectWeights(layout); err != nil {
			b.Fatal(err)
		}
	}
	ctl := sys.Controller()

	// Attack stream: hammer first weight row's neighbor.
	victim := layout.WeightRows()[0]
	aggs := sys.Device().Geometry().Neighbors(victim, 1)
	// Legitimate stream: read weights (hits locked rows only when the
	// weights themselves are locked).
	phys, err := layout.PhysOfWeight(0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		for _, agg := range aggs {
			ctl.HammerAttempt(agg)
		}
		if _, _, err := ctl.Read(phys, 1); err != nil {
			b.Fatal(err)
		}
	}
	st := ctl.Stats()
	return st.Denied, st.SwapLatency
}

// BenchmarkAblationLockGranularity compares the paper's adjacent-row
// locking against locking the weight rows themselves: the latter forces a
// SWAP on nearly every legitimate access (the paper's §IV-A argument).
func BenchmarkAblationLockGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, swapAdj := ablationRun(b, nil, false, 2)
		_, swapSelf := ablationRun(b, nil, true, 2)
		once(b, "abl-gran", fmt.Sprintf(
			"lock granularity ablation:\n  adjacent-row locking: swap latency %v\n  weight-row locking:   swap latency %v\n  (weight-row locking forces constant unlock SWAPs, as §IV-A argues)",
			swapAdj, swapSelf))
		if swapSelf <= swapAdj {
			b.Fatal("weight-row locking should cost more swap latency")
		}
	}
}

// BenchmarkAblationRelockInterval sweeps the re-lock cadence.
func BenchmarkAblationRelockInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := "re-lock interval ablation (weight-row locking to force swap traffic):\n"
		for _, interval := range []int{50, 200, 1000, 5000} {
			_, swapLat := ablationRun(b, func(c *controller.Config) {
				c.RelockInterval = interval
			}, true, 2)
			out += fmt.Sprintf("  interval %5d: swap latency %v\n", interval, swapLat)
		}
		once(b, "abl-relock", out)
	}
}

// BenchmarkAblationSwapDest compares destination selection policies.
func BenchmarkAblationSwapDest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rr := ablationRun(b, func(c *controller.Config) { c.DestPolicy = controller.DestRoundRobin }, true, 2)
		_, rnd := ablationRun(b, func(c *controller.Config) { c.DestPolicy = controller.DestRandom }, true, 2)
		once(b, "abl-dest", fmt.Sprintf(
			"swap destination ablation:\n  round-robin: swap latency %v\n  random:      swap latency %v",
			rr, rnd))
	}
}

// BenchmarkAblationLockTableSize verifies protection degrades gracefully
// when the lock-table cannot hold every aggressor row.
func BenchmarkAblationLockTableSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := "lock-table capacity ablation:\n"
		for _, capEntries := range []int{4, 16, 64, 8192} {
			ccfg := core.DefaultConfig()
			ccfg.Hammer.TRH = 40
			ccfg.Controller.Table.CapacityEntries = capEntries
			sys, err := core.NewSystem(ccfg)
			if err != nil {
				b.Fatal(err)
			}
			qm := quant.NewModel(nn.NewResNet20(4, 0.125, 33))
			opts := memmap.DefaultOptions()
			opts.StartRow = 1
			opts.Avoid = func(a dram.RowAddr) bool { return sys.Controller().IsReserved(a) }
			layout, err := memmap.New(qm, sys.Device(), opts)
			if err != nil {
				b.Fatal(err)
			}
			locked, _ := sys.ProtectWeights(layout) // error expected at low capacity
			total := len(layout.AggressorRows(1))
			out += fmt.Sprintf("  capacity %5d: locked %d of %d aggressor rows\n", capEntries, locked, total)
		}
		once(b, "abl-size", out)
	}
}

// BenchmarkAblationLockDistance compares distance-1 locking against
// distance-2 (Half-Double coverage).
func BenchmarkAblationLockDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := "lock distance ablation (stride-4 placement):\n"
		for _, dist := range []int{1, 2} {
			ccfg := core.DefaultConfig()
			ccfg.Hammer.TRH = 40
			ccfg.Hammer.BlastRadius = 2
			ccfg.Hammer.DistantFlipProb = 1
			ccfg.LockDistance = dist
			sys, err := core.NewSystem(ccfg)
			if err != nil {
				b.Fatal(err)
			}
			qm := quant.NewModel(nn.NewResNet20(4, 0.125, 35))
			opts := memmap.DefaultOptions()
			opts.StartRow = 1
			opts.RowStride = 4
			opts.Avoid = func(a dram.RowAddr) bool { return sys.Controller().IsReserved(a) }
			layout, err := memmap.New(qm, sys.Device(), opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.ProtectWeights(layout); err != nil {
				b.Fatal(err)
			}
			// Half-Double: hammer a distance-2 aggressor of a weight row.
			victim := layout.WeightRows()[0]
			geom := sys.Device().Geometry()
			for _, agg := range geom.Neighbors(victim, 2) {
				for j := 0; j < 45; j++ {
					sys.Controller().HammerAttempt(agg)
				}
			}
			flips := int(sys.Hammer().History().TotalFlips)
			out += fmt.Sprintf("  distance %d: %d Half-Double flips landed\n", dist, flips)
		}
		once(b, "abl-dist", out)
	}
}

// BenchmarkSimWindow measures end-to-end controller throughput under a
// mixed privileged/attack request stream.
func BenchmarkControllerMixedStream(b *testing.B) {
	sys := newBenchSystem(b)
	ctl := sys.Controller()
	row := dram.RowAddr{Bank: 0, Row: 9}
	phys, err := ctl.Mapper().Untranslate(row, 0)
	if err != nil {
		b.Fatal(err)
	}
	ctl.Write(phys, []byte{1, 2, 3, 4})
	ctl.LockNeighborsOf(phys, 1)
	agg := dram.RowAddr{Bank: 0, Row: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%3 == 0 {
			ctl.HammerAttempt(agg)
		} else {
			if _, _, err := ctl.Read(phys, 4); err != nil {
				b.Fatal(err)
			}
		}
	}
}
