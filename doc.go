// Package repro is a from-scratch Go reproduction of "DRAM-Locker: A
// General-Purpose DRAM Protection Mechanism against Adversarial DNN Weight
// Attacks" (Zhou et al., DATE 2024).
//
// The library lives under internal/: the DRAM device model, RowHammer
// fault injection, RowClone/SWAP, the DRAM-Locker ISA and controller, the
// lock-table, baseline defenses, a pure-Go quantized-DNN substrate, the
// BFA/PTA attacks, and the experiment harness that regenerates every table
// and figure of the paper. See README.md for a guided tour, DESIGN.md for
// the system inventory, and EXPERIMENTS.md for paper-vs-measured results.
//
// Experiments execute through internal/engine: each (preset, experiment)
// pair is a named, self-contained job ("tiny/fig8a") in a registry, run
// on a runtime.NumCPU()-bounded worker pool with deterministic per-job
// seeding, per-job timing/error capture, glob filtering, and result
// caching keyed by the preset hash. The scheduler dispatches each task —
// a monolithic job or one shard — through the pluggable engine.Executor
// seam: LocalExecutor runs tasks in-process, and internal/remote ships
// them to dramlockerd worker daemons over HTTP using the versioned wire
// types of internal/api (tasks travel as job name + shard index + seed +
// cache-key stem; workers re-resolve closures from their own registry).
// Seeding, ordering, merging and caching stay scheduler-side, so reports
// render as text or JSON and are byte-identical regardless of worker
// count or transport. cmd/dramlocker is the CLI front end (-exp,
// -preset, -workers, -remote, -json, -list); cmd/dramlockerd is the
// worker daemon.
//
// The root package holds the benchmark harness (bench_test.go): one
// testing.B benchmark per paper table/figure plus ablation benches for the
// design choices called out in DESIGN.md §5.
package repro
