# Shared developer / CI entry points. CI (.github/workflows/ci.yml) runs
# exactly these targets so local `make ci` reproduces the gate.

GO ?= go

.PHONY: build test race bench-smoke vet fmt-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race smoke on the concurrent packages: the engine worker pool, sharded
# scheduler and disk cache, plus the trace replay layer.
race:
	$(GO) test -race ./internal/engine/... ./internal/trace/

# One iteration of every benchmark in every package (regenerates the
# paper tables without timing noise mattering). Set BENCH_JSON=<file> to
# also record the run as go-test JSON events — CI uploads that file as
# the BENCH_*.json perf-trend artifact.
BENCH_JSON ?=
bench-smoke:
ifeq ($(BENCH_JSON),)
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
else
	$(GO) test -json -bench=. -benchtime=1x -run='^$$' ./... > $(BENCH_JSON)
	@echo "bench JSON written to $(BENCH_JSON)"
endif

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

ci: vet fmt-check build test race
