# Shared developer / CI entry points. CI (.github/workflows/ci.yml) runs
# exactly these targets so local `make ci` reproduces the gate.

GO ?= go

.PHONY: build test race bench-smoke bench-kernels bench-attack vet fmt-check lint cache-gate e2e-remote e2e-chaos e2e-resultplane e2e-ha ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race smoke on the concurrent packages: the engine scheduler/executor,
# sharded state and disk cache, the remote worker server/client, the job
# broker and its wire types, the worker-budget semaphore and the
# parallel tensor/nn kernels it feeds, the goroutine-parallel BFA
# candidate scoring and the rowhammer engine it drives, plus the trace
# replay layer.
race:
	$(GO) test -race ./internal/engine/... ./internal/remote/ \
		./internal/queue/ ./internal/api/ ./internal/trace/ \
		./internal/par/ ./internal/tensor/ ./internal/nn/ \
		./internal/attack/ ./internal/rowhammer/

# Loopback end-to-end gate for the remote executors: boots dramlockerd
# on 127.0.0.1 in both topologies — push worker (-remote) and job-queue
# broker with a pull worker (-broker) — runs the tiny preset through
# each at workers 1 and 4, and asserts the reports are byte-identical to
# local runs (plus warm -require-cached replays over shared -cache-dirs).
# Ends with the crash-recovery leg: a journaled broker is SIGKILLed
# mid-run, restarted over its journal, and the run must finish
# byte-identical anyway.
e2e-remote:
	bash scripts/e2e_remote.sh

# Chaos soak gate: the tiny preset through a fault-injected broker
# (dropped polls, dropped + delayed done reports), a 1 KiB journal
# budget forcing live rotation and background compaction, a 2 tasks/s
# rate limit the scheduler must wait out, and a SIGKILLed worker whose
# leases a second worker drains. The report must stay byte-identical to
# local; afterwards the script audits that every hazard actually fired,
# that retries stayed bounded (the exit receipt's backoff_total), that
# the broker leaked no goroutines, and that restarts replay the rotated
# (and torn-tail) journal correctly. Also enforces the unified-backoff
# contract: no bare time.Sleep retry loops in internal/remote.
e2e-chaos:
	bash scripts/e2e_chaos.sh

# Result-plane gate: a standalone plane daemon is populated by one cold
# run, then a fresh -cache-dir run must pass -require-cached purely
# from the plane, a plane-attached pull worker must serve a queue run
# without recomputing anything, and a broker co-hosting the plane must
# complete a submitted job with zero leases (every task finished from
# the plane at submit time). All reports byte-identical to local.
e2e-resultplane:
	bash scripts/e2e_resultplane.sh

# Broker high-availability gate: a hot standby replicates the primary's
# journal over /v2/replicate; the primary is SIGKILLed mid-run with a
# live backlog and the run must finish byte-identical to local through
# both takeover paths — explicit promotion (dramlocker -promote) and the
# -takeover-after silence timer. A third leg restarts the dead primary
# as a zombie and requires the new primary's fencer to flip it into a
# read-only replica whose late mutations are refused with a typed
# not_leader redirect. Audits: backlog fully drained, no replication
# entries skipped, fencing epoch durable across restarts.
e2e-ha:
	bash scripts/e2e_ha.sh

# Persistent result cache gate: a cold tiny-preset run populates the
# on-disk cache, the warm run must serve 100% from it and render a
# byte-identical normalised report (CI runs exactly this script).
cache-gate:
	bash scripts/cache_gate.sh

# Static analysis, pinned so CI and laptops agree. staticcheck is
# fetched on demand by `go run`; where the module proxy is unreachable
# (offline or air-gapped builds) the probe fails and lint skips with a
# note instead of breaking the build — CI always has the network, so
# the gate is real there.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2025.1.1
lint:
	@if $(GO) run $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK) ./...; \
	else \
		echo "lint: $(STATICCHECK) unavailable (no module proxy?); skipping"; \
	fi

# One iteration of every benchmark outside the compute-kernel and
# attack-layer packages (regenerates the paper tables without timing
# noise mattering); the tensor/nn kernels are bench-kernels' job and the
# attack/trace hot paths are bench-attack's, so each benchmark lands in
# the artifact exactly once. Set BENCH_JSON=<file> to also record the
# run as go-test JSON events — CI uploads that file as the BENCH_*.json
# perf-trend artifact, with bench-kernels and bench-attack appending to
# it.
BENCH_JSON ?=
BENCH_SMOKE_PKGS = $$($(GO) list ./... | grep -v -e /internal/tensor -e /internal/nn \
	-e /internal/attack -e /internal/trace)
bench-smoke:
ifeq ($(BENCH_JSON),)
	$(GO) test -bench=. -benchtime=1x -run='^$$' $(BENCH_SMOKE_PKGS)
else
	$(GO) test -json -bench=. -benchtime=1x -run='^$$' $(BENCH_SMOKE_PKGS) > $(BENCH_JSON)
	@echo "bench JSON written to $(BENCH_JSON)"
endif

# Compute-kernel microbenchmarks (tensor GEMM/im2col, nn train-step and
# inference) with allocation stats: the serial/parallel GEMM pairs track
# multi-core throughput and the train-step allocs/op tracks the
# zero-alloc path. With BENCH_JSON set, events append to the same
# BENCH_<sha>.json artifact the CI bench job uploads.
bench-kernels:
ifeq ($(BENCH_JSON),)
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./internal/tensor/ ./internal/nn/
else
	$(GO) test -json -bench=. -benchmem -benchtime=1x -run='^$$' ./internal/tensor/ ./internal/nn/ >> $(BENCH_JSON)
	@echo "kernel bench JSON appended to $(BENCH_JSON)"
endif

# Attack/sim hot-path microbenchmarks with allocation stats: the BFA
# search iteration (BenchmarkBFASearchIter allocs/op is the zero-alloc
# steady-state gate), candidate selection (BenchmarkRankCandidates) and
# trace replay over the dense DRAM-sim state (BenchmarkReplayDense).
# With BENCH_JSON set, events append to the same BENCH_<sha>.json
# artifact as bench-smoke and bench-kernels.
bench-attack:
ifeq ($(BENCH_JSON),)
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./internal/attack/ ./internal/trace/
else
	$(GO) test -json -bench=. -benchmem -benchtime=1x -run='^$$' ./internal/attack/ ./internal/trace/ >> $(BENCH_JSON)
	@echo "attack bench JSON appended to $(BENCH_JSON)"
endif

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

ci: vet fmt-check lint build test race e2e-remote e2e-chaos e2e-resultplane e2e-ha cache-gate
