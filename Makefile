# Shared developer / CI entry points. CI (.github/workflows/ci.yml) runs
# exactly these targets so local `make ci` reproduces the gate.

GO ?= go

.PHONY: build test race bench-smoke vet fmt-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race smoke on the concurrent packages: the engine worker pool and the
# trace replay layer.
race:
	$(GO) test -race ./internal/engine/ ./internal/trace/

# One iteration of every benchmark (regenerates the paper tables without
# timing noise mattering).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

ci: vet fmt-check build test race
