#!/usr/bin/env bash
# Chaos soak gate for the fleet (make e2e-chaos).
#
# Runs the tiny preset through a deliberately hostile broker topology
# and requires the report to come out byte-identical to a local run
# anyway. The hostility is layered:
#
#   faults:   the broker loads a faultinject plan — worker polls are
#             dropped at the transport (severed connections), the first
#             task-done reports are dropped outright (the worker never
#             retries a done, so the lease must expire and the task
#             re-execute), later dones are delayed 400ms — so every
#             retry path in internal/remote actually fires.
#   journal:  a 1 KiB -journal-max-bytes budget forces live segment
#             rotations and background compactions mid-run.
#   limits:   -max-submit-rate 2 rate-limits the 6-job submission burst;
#             the scheduler must honor the typed rate_limited error and
#             its Retry-After hint to finish at all.
#   murder:   the first pull worker is SIGKILLed while it holds leases
#             (-lease-ttl 2s); a second worker drains the requeued work.
#
# Afterwards the gate audits the wreckage: rate limiting, rotation,
# compaction and requeues all actually happened; the surviving worker's
# exit receipt shows bounded backoff (no retry storm); the broker's
# goroutine count returns to its pre-run baseline (no leaks); and a
# broker restarted over the rotated journal replays every job. A second
# leg tears the final journal done-record mid-line (the SIGKILL wound)
# and requires the restarted broker to skip the torn tail leniently and
# requeue the affected task instead of refusing startup or losing it.
set -euo pipefail

cd "$(dirname "$0")/.."

# The unified-backoff contract: no ad-hoc time.Sleep retry loops left in
# internal/remote (tests may sleep; production code goes through
# internal/backoff, which is seeded, jittered and context-aware).
if grep -rn "time\.Sleep" internal/remote --include='*.go' | grep -v _test.go; then
    echo "FAIL: bare time.Sleep in internal/remote (use internal/backoff)"
    exit 1
fi
echo "grep gate: internal/remote is time.Sleep-free"

EXPS=fig1b,mc,table1,fig7a,fig7b,defense
WORK=$(mktemp -d)
PIDS=()
RUN_PID=""
cleanup() {
    for pid in "${PIDS[@]}" "$RUN_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/dramlocker" ./cmd/dramlocker
go build -o "$WORK/dramlockerd" ./cmd/dramlockerd

norm() { sed -E 's/^(=== .*) \([^)]*\)( ===)$/\1\2/; /^[0-9]+ jobs, /d' "$1"; }

# wait_addr LOGFILE PID: block until the daemon logs its bound address.
wait_addr() {
    local addr=""
    for i in $(seq 1 100); do
        addr=$(sed -nE 's/.* on (127\.0\.0\.1:[0-9]+) .*/\1/p' "$1" | head -n1)
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        kill -0 "$2" 2>/dev/null || break
        sleep 0.1
    done
    echo "daemon never came up:" >&2; cat "$1" >&2; return 1
}

# stat_of ADDR FIELD: one integer out of `dramlocker -stats -json`.
stat_of() {
    "$WORK/dramlocker" -broker "$1" -stats -json 2>/dev/null \
        | sed -nE "s/.*\"$2\": ([0-9]+).*/\1/p" | head -n1
}

# wait_stat ADDR FIELD MIN TRIES: poll until the counter reaches MIN.
wait_stat() {
    local v=0
    for i in $(seq 1 "$4"); do
        v=$(stat_of "$1" "$2"); v=${v:-0}
        [ "$v" -ge "$3" ] && { echo "$v"; return 0; }
        sleep 0.05
    done
    echo "${v:-0}"
    return 1
}

"$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers 4 -quiet > "$WORK/local.txt"
norm "$WORK/local.txt" > "$WORK/local.norm"

# ---- Leg 1: fault-injected broker, rotation, rate limit, dead worker --
cat > "$WORK/plan.json" <<'EOF'
{
  "seed": 1337,
  "rules": [
    {"point": "server.poll", "kind": "drop", "prob": 0.35, "count": 20},
    {"point": "server.done", "kind": "drop", "count": 2},
    {"point": "server.done", "kind": "delay", "delay_ms": 400, "count": 50}
  ]
}
EOF

JDIR="$WORK/journal"
"$WORK/dramlockerd" -broker -addr 127.0.0.1:0 -name chaosbroker \
    -journal-dir "$JDIR" -journal-max-bytes 1024 \
    -lease-ttl 2s -max-submit-rate 2 \
    -fault-plan "$WORK/plan.json" -allow-faults >"$WORK/broker.log" 2>&1 &
BROKER_PID=$!; PIDS+=("$BROKER_PID")
BADDR=$(wait_addr "$WORK/broker.log" "$BROKER_PID")
echo "chaos broker up on $BADDR (journal $JDIR, 1 KiB segments, 2 tasks/s)"

GOROUTINES0=$(stat_of "$BADDR" goroutines); GOROUTINES0=${GOROUTINES0:-0}
[ "$GOROUTINES0" -gt 0 ] || { echo "FAIL: no goroutine baseline"; exit 1; }

"$WORK/dramlockerd" -pull "$BADDR" -preset tiny -name victim -capacity 2 >"$WORK/victim.log" 2>&1 &
VICTIM_PID=$!; PIDS+=("$VICTIM_PID")

"$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers 4 -quiet -broker "$BADDR" > "$WORK/chaos.txt" &
RUN_PID=$!

# SIGKILL the victim the moment it holds a lease: every done is delayed
# 400ms by the fault plan, so the observed lease cannot have reported
# yet — the kill reliably strands in-flight work for lease expiry.
if ! wait_stat "$BADDR" leased 1 200 >/dev/null; then
    echo "FAIL: victim worker never leased a task"; exit 1
fi
kill -9 "$VICTIM_PID" 2>/dev/null
wait "$VICTIM_PID" 2>/dev/null || true
echo "victim worker SIGKILLed while holding lease(s)"

"$WORK/dramlockerd" -pull "$BADDR" -preset tiny -name survivor >"$WORK/survivor.log" 2>&1 &
SURVIVOR_PID=$!; PIDS+=("$SURVIVOR_PID")

if ! wait "$RUN_PID"; then
    echo "FAIL: run did not survive the chaos plan"; cat "$WORK/chaos.txt"; exit 1
fi
RUN_PID=""
norm "$WORK/chaos.txt" > "$WORK/chaos.norm"
if ! diff -u "$WORK/local.norm" "$WORK/chaos.norm"; then
    echo "FAIL: chaos-run report diverged from local"
    exit 1
fi
echo "report byte-identical to local through drops, delays, rate limit and a dead worker"

# The chaos must actually have happened — a gate that passes because
# nothing fired is not a gate.
RATE_LIMITED=$(stat_of "$BADDR" rate_limited); RATE_LIMITED=${RATE_LIMITED:-0}
ROTATIONS=$(stat_of "$BADDR" rotations); ROTATIONS=${ROTATIONS:-0}
COMPACTIONS=$(stat_of "$BADDR" compactions); COMPACTIONS=${COMPACTIONS:-0}
[ "$RATE_LIMITED" -ge 1 ] || { echo "FAIL: rate limiter never fired"; exit 1; }
[ "$ROTATIONS" -ge 1 ] || { echo "FAIL: journal never rotated under the 1 KiB budget"; exit 1; }
[ "$COMPACTIONS" -ge 1 ] || { echo "FAIL: sealed segments were never background-compacted"; exit 1; }
REQUEUES=$(wait_stat "$BADDR" requeues 1 200) || { echo "FAIL: killed worker's leases never requeued"; exit 1; }
SUBMITTED=$(stat_of "$BADDR" submitted); SUBMITTED=${SUBMITTED:-0}
echo "audit: submitted=$SUBMITTED rate_limited=$RATE_LIMITED rotations=$ROTATIONS compactions=$COMPACTIONS requeues=$REQUEUES"

# Bounded retries: the survivor's exit receipt counts every backoff it
# took. The fault plan is finite (count-capped), so a healthy client
# takes a bounded number of delays — a storm means a retry loop without
# backoff discipline.
kill "$SURVIVOR_PID" 2>/dev/null
wait "$SURVIVOR_PID" 2>/dev/null || true
BACKOFFS=$(sed -nE 's/.*backoff_total=([0-9]+).*/\1/p' "$WORK/survivor.log" | head -n1)
[ -n "$BACKOFFS" ] || { echo "FAIL: survivor logged no exit receipt:"; cat "$WORK/survivor.log"; exit 1; }
[ "$BACKOFFS" -le 500 ] || { echo "FAIL: retry storm: survivor took $BACKOFFS backoffs"; exit 1; }
echo "survivor drained cleanly after $BACKOFFS bounded backoff(s)"

# No goroutine leaks: with both workers gone and the run finished, the
# broker must fall back to (about) its pre-run census.
LEAK_OK=""
for i in $(seq 1 100); do
    G=$(stat_of "$BADDR" goroutines); G=${G:-999999}
    if [ "$G" -le $((GOROUTINES0 + 8)) ]; then LEAK_OK="$G"; break; fi
    sleep 0.1
done
[ -n "$LEAK_OK" ] || { echo "FAIL: goroutine leak: baseline $GOROUTINES0, now $G"; exit 1; }
echo "no goroutine leak (baseline $GOROUTINES0, settled $LEAK_OK)"

# The broker's exit receipt must show the plan actually fired.
kill "$BROKER_PID" 2>/dev/null
wait "$BROKER_PID" 2>/dev/null || true
grep -q "faults_fired=.*server\." "$WORK/broker.log" || {
    echo "FAIL: broker exit receipt shows no fired faults:"; tail -n3 "$WORK/broker.log"; exit 1; }
echo "broker receipt: $(sed -nE 's/.*(backoff_total=.*)/\1/p' "$WORK/broker.log" | tail -n1)"

# Restart over the rotated journal: replay must cross the segment
# boundaries and startup compaction must fold the directory back to
# snapshot + active.
"$WORK/dramlockerd" -broker -addr 127.0.0.1:0 -name reborn \
    -journal-dir "$JDIR" -journal-max-bytes 1024 >"$WORK/reborn.log" 2>&1 &
REBORN_PID=$!; PIDS+=("$REBORN_PID")
RADDR=$(wait_addr "$WORK/reborn.log" "$REBORN_PID")
grep -q "journal .* replayed $SUBMITTED jobs" "$WORK/reborn.log" || {
    echo "FAIL: restart over rotated journal did not replay all $SUBMITTED jobs:"; cat "$WORK/reborn.log"; exit 1; }
SEGMENTS=$(stat_of "$RADDR" segments); SEGMENTS=${SEGMENTS:-0}
[ "$SEGMENTS" -eq 2 ] || { echo "FAIL: startup compaction left $SEGMENTS segments, want 2"; exit 1; }
echo "restart replayed all 6 jobs across rotated segments; compacted to $SEGMENTS segments"
kill "$REBORN_PID" 2>/dev/null; wait "$REBORN_PID" 2>/dev/null || true

# ---- Leg 2: torn journal tail -----------------------------------------
# Tear exactly one done record mid-line (what a power cut leaves) and
# require the restarted broker to forgive the active tail: startup
# succeeds, the torn line is skipped, and the affected task is queued
# for re-execution rather than lost or double-counted.
cat > "$WORK/torn.json" <<'EOF'
{
  "seed": 7,
  "rules": [
    {"point": "journal.append.done", "kind": "torn", "count": 1}
  ]
}
EOF
JDIR2="$WORK/journal2"
"$WORK/dramlockerd" -broker -addr 127.0.0.1:0 -name tornbroker -journal-dir "$JDIR2" \
    -fault-plan "$WORK/torn.json" -allow-faults >"$WORK/torn.log" 2>&1 &
TORN_PID=$!; PIDS+=("$TORN_PID")
TADDR=$(wait_addr "$WORK/torn.log" "$TORN_PID")
"$WORK/dramlockerd" -pull "$TADDR" -preset tiny -name tornworker >"$WORK/tornworker.log" 2>&1 &
TORNW_PID=$!; PIDS+=("$TORNW_PID")

"$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers 4 -quiet -broker "$TADDR" > "$WORK/torn.txt"
diff -u "$WORK/local.norm" <(norm "$WORK/torn.txt") >/dev/null || {
    echo "FAIL: torn-write leg report diverged"; exit 1; }

kill "$TORNW_PID" 2>/dev/null; wait "$TORNW_PID" 2>/dev/null || true
kill "$TORN_PID" 2>/dev/null; wait "$TORN_PID" 2>/dev/null || true
grep -q "faults_fired=.*journal.append.done/torn=1" "$WORK/torn.log" || {
    echo "FAIL: torn fault never fired:"; tail -n3 "$WORK/torn.log"; exit 1; }

"$WORK/dramlockerd" -broker -addr 127.0.0.1:0 -name tornreborn -journal-dir "$JDIR2" \
    >"$WORK/tornreborn.log" 2>&1 &
TORNR_PID=$!; PIDS+=("$TORNR_PID")
TRADDR=$(wait_addr "$WORK/tornreborn.log" "$TORNR_PID")
grep -q "1 lines skipped" "$WORK/tornreborn.log" || {
    echo "FAIL: restart did not skip the torn tail:"; cat "$WORK/tornreborn.log"; exit 1; }
PENDING=$(stat_of "$TRADDR" pending); PENDING=${PENDING:-0}
[ "$PENDING" -ge 1 ] || { echo "FAIL: torn done-record did not requeue its task (pending=$PENDING)"; exit 1; }
echo "torn tail: startup skipped 1 line, requeued the unconfirmed task (pending=$PENDING)"
kill "$TORNR_PID" 2>/dev/null; wait "$TORNR_PID" 2>/dev/null || true

# ---- Leg 3: faulty result plane ---------------------------------------
# A plane that drops the first 10 PUTs and errors the first 3 GETs must
# degrade, never break: attached runs fall back to local compute, keep
# their write-through best-effort, and render byte-identical reports.
cat > "$WORK/planefaults.json" <<'EOF'
{
  "seed": 21,
  "rules": [
    {"point": "server.put", "kind": "drop", "count": 10},
    {"point": "server.get", "kind": "error", "count": 3}
  ]
}
EOF
"$WORK/dramlockerd" -result-plane -addr 127.0.0.1:0 -name chaosplane \
    -fault-plan "$WORK/planefaults.json" -allow-faults >"$WORK/plane.log" 2>&1 &
PLANE_PID=$!; PIDS+=("$PLANE_PID")
PADDR=$(wait_addr "$WORK/plane.log" "$PLANE_PID")
echo "faulty result plane up on $PADDR (10 dropped PUTs, 3 failing GETs)"

# Cold run: the dropped PUTs leave holes in the plane, but the local
# compute and disk cache are authoritative — the report must not care.
"$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers 4 -quiet \
    -plane "$PADDR" -cache-dir "$WORK/pcacheA" > "$WORK/pcold.txt"
diff -u "$WORK/local.norm" <(norm "$WORK/pcold.txt") >/dev/null || {
    echo "FAIL: cold run against faulty plane diverged"; exit 1; }

# Fresh-machine run: the failing GETs force those shards back to local
# compute; everything must still come out byte-identical.
"$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers 4 -quiet \
    -plane "$PADDR" -cache-dir "$WORK/pcacheB" > "$WORK/pfresh.txt"
diff -u "$WORK/local.norm" <(norm "$WORK/pfresh.txt") >/dev/null || {
    echo "FAIL: fresh run against faulty plane diverged"; exit 1; }
echo "both plane runs byte-identical to local through dropped PUTs and failing GETs"

# The damage must actually have happened, and the plane must have
# healed past it (later write-throughs landed).
ENTRIES=$(stat_of "$PADDR" entries); ENTRIES=${ENTRIES:-0}
[ "$ENTRIES" -ge 1 ] || { echo "FAIL: no write-through survived the fault plan"; exit 1; }
kill "$PLANE_PID" 2>/dev/null; wait "$PLANE_PID" 2>/dev/null || true
grep -q "faults_fired=.*server.put/drop=10" "$WORK/plane.log" || {
    echo "FAIL: plane PUT drops never fired:"; tail -n3 "$WORK/plane.log"; exit 1; }
grep -q "faults_fired=.*server.get/error=3" "$WORK/plane.log" || {
    echo "FAIL: plane GET faults never fired:"; tail -n3 "$WORK/plane.log"; exit 1; }
echo "faulty plane degraded to local compute and healed ($ENTRIES entries survived)"

echo "e2e-chaos: OK"
