#!/usr/bin/env bash
# bench_diff.sh OLD.json NEW.json — compare two BENCH_*.json artifacts.
#
# The CI bench job records every benchmark as go-test JSON events
# (BENCH_<sha>.json, uploaded per commit). This script lines two such
# artifacts up by benchmark name and prints the ns/op and allocs/op
# deltas, so a PR can be compared against its base commit without a
# dedicated perf rig.
#
# Exit status: timing deltas never fail the script (1-iteration smoke
# runs are noisy by design); it exits non-zero only when a pinned
# zero-alloc benchmark (the train-step and BFA search-iteration
# steady-state gates) reports MORE allocs/op than the base artifact —
# at -benchtime=1x the counter includes one-time warm-up allocations,
# so the invariant is "no increase", not an absolute zero.
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 OLD.json NEW.json" >&2
    exit 2
fi
OLD=$1
NEW=$2
[ -f "$OLD" ] || { echo "bench-diff: missing $OLD" >&2; exit 2; }
[ -f "$NEW" ] || { echo "bench-diff: missing $NEW" >&2; exit 2; }

# Benchmarks whose allocs/op must not grow (the zero-alloc pins; see
# bench-kernels and bench-attack in the Makefile).
ZERO_ALLOC_PINS='^Benchmark(TrainStep|BFASearchIter)'

# extract FILE -> "name ns_per_op allocs_per_op" lines (allocs "-" when
# the benchmark ran without -benchmem). test2json splits one benchmark
# result line across several Output events (the name flushes before the
# measurements), and parallel package runs interleave, so events are
# reassembled per package before parsing.
extract() {
    awk '
    !/"Action":"output"/ { next }
    {
        pkg = "";
        if (match($0, /"Package":"[^"]+"/)) pkg = substr($0, RSTART + 11, RLENGTH - 12);
        if (match($0, /"Output":".*"\}[ \t]*$/)) buf[pkg] = buf[pkg] substr($0, RSTART + 10, RLENGTH - 12);
    }
    END {
        for (p in buf) {
            n = split(buf[p], lines, /\\n/);
            for (i = 1; i <= n; i++) {
                line = lines[i];
                gsub(/\\t/, " ", line);
                if (line !~ /^Benchmark/) continue;
                cnt = split(line, f, / +/);
                ns = ""; allocs = "-";
                for (j = 2; j <= cnt; j++) {
                    if (f[j] == "ns/op")     ns = f[j-1];
                    if (f[j] == "allocs/op") allocs = f[j-1];
                }
                if (ns != "") print f[1], ns, allocs;
            }
        }
    }' "$1" | sort -u
}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
extract "$OLD" > "$TMP/old"
extract "$NEW" > "$TMP/new"
[ -s "$TMP/old" ] || { echo "bench-diff: no benchmark results in $OLD" >&2; exit 2; }
[ -s "$TMP/new" ] || { echo "bench-diff: no benchmark results in $NEW" >&2; exit 2; }

# Join on benchmark name and render the comparison; collect pinned
# allocation regressions on the way.
join "$TMP/old" "$TMP/new" | awk -v pins="$ZERO_ALLOC_PINS" '
    BEGIN {
        printf "%-44s %14s %14s %9s %12s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op";
        bad = 0;
    }
    {
        name = $1; ons = $2; oalloc = $3; nns = $4; nalloc = $5;
        delta = "n/a";
        if (ons + 0 > 0) delta = sprintf("%+.1f%%", (nns - ons) / ons * 100);
        ainfo = (oalloc == "-" && nalloc == "-") ? "-" : oalloc "->" nalloc;
        flag = "";
        if (name ~ pins && oalloc != "-" && nalloc != "-" && nalloc + 0 > oalloc + 0) {
            flag = "  ALLOC REGRESSION";
            bad++;
        }
        printf "%-44s %14s %14s %9s %12s%s\n", name, ons, nns, delta, ainfo, flag;
    }
    END {
        if (bad > 0) { printf "bench-diff: %d zero-alloc pin(s) regressed\n", bad; exit 1; }
    }'

# Report coverage drift (new/removed benchmarks) without failing on it.
only_old=$(join -v1 "$TMP/old" "$TMP/new" | awk '{print $1}')
only_new=$(join -v2 "$TMP/old" "$TMP/new" | awk '{print $1}')
[ -z "$only_old" ] || echo "bench-diff: only in $OLD:" $only_old
[ -z "$only_new" ] || echo "bench-diff: only in $NEW:" $only_new
echo "bench-diff: OK"
