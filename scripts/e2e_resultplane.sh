#!/usr/bin/env bash
# Result-plane end-to-end gate (make e2e-resultplane).
#
# Proves the fleet-wide result plane actually replaces recomputation,
# on real daemons over 127.0.0.1:
#
#   cold:     a standalone plane daemon (dramlockerd -result-plane
#             -plane-dir) is populated by one cold run (-plane +
#             -cache-dir A): every computed shard is written through.
#   fresh:    a second "machine" — fresh -cache-dir B, same -plane —
#             must pass -require-cached purely from the plane (zero
#             recomputation: the plane's put counters do not move) with
#             a byte-identical report.
#   worker:   a pull worker attached to the plane (-pull ... -plane)
#             serves a broker run without recomputing anything either —
#             plane hits climb, puts stay flat, report byte-identical.
#   co-host:  a broker co-hosting the same plane directory
#             (dramlockerd -broker -result-plane) completes a submitted
#             job with NO worker registered at all: every task finishes
#             from the plane at submit time (plane_hits == completed,
#             zero leases ever granted), report byte-identical.
set -euo pipefail

cd "$(dirname "$0")/.."

EXPS=fig1b,mc,table1,fig7a,fig7b,defense
WORK=$(mktemp -d)
PIDS=()
RUN_PID=""
cleanup() {
    for pid in "${PIDS[@]}" "$RUN_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/dramlocker" ./cmd/dramlocker
go build -o "$WORK/dramlockerd" ./cmd/dramlockerd

# Same normalisation as the other e2e gates: strip per-job timings and
# the summary line; everything else must match byte for byte.
norm() { sed -E 's/^(=== .*) \([^)]*\)( ===)$/\1\2/; /^[0-9]+ jobs, /d' "$1"; }

# wait_addr LOGFILE PID: block until the daemon logs its bound address.
wait_addr() {
    local addr=""
    for i in $(seq 1 100); do
        addr=$(sed -nE 's/.* on (127\.0\.0\.1:[0-9]+) .*/\1/p' "$1" | head -n1)
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        kill -0 "$2" 2>/dev/null || break
        sleep 0.1
    done
    echo "daemon never came up:" >&2; cat "$1" >&2; return 1
}

# stat_of ADDR FIELD: one integer out of `dramlocker -stats -json` (the
# plane daemon answers the same GET /v2/metrics schema as a broker).
stat_of() {
    "$WORK/dramlocker" -broker "$1" -stats -json 2>/dev/null \
        | sed -nE "s/.*\"$2\": ([0-9]+).*/\1/p" | head -n1
}

"$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers 4 -quiet > "$WORK/local.txt"
norm "$WORK/local.txt" > "$WORK/local.norm"

# ---- Cold: populate a standalone plane --------------------------------
PDIR="$WORK/planedir"
"$WORK/dramlockerd" -result-plane -addr 127.0.0.1:0 -plane-dir "$PDIR" -name plane1 \
    >"$WORK/plane.log" 2>&1 &
PLANE_PID=$!; PIDS+=("$PLANE_PID")
PADDR=$(wait_addr "$WORK/plane.log" "$PLANE_PID")
echo "result plane up on $PADDR (dir $PDIR)"

"$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers 4 -quiet \
    -plane "$PADDR" -cache-dir "$WORK/cacheA" > "$WORK/cold.txt"
diff -u "$WORK/local.norm" <(norm "$WORK/cold.txt") || {
    echo "FAIL: cold -plane report diverged from local"; exit 1; }
PUTS=$(stat_of "$PADDR" puts); PUTS=${PUTS:-0}
ENTRIES=$(stat_of "$PADDR" entries); ENTRIES=${ENTRIES:-0}
[ "$PUTS" -ge 1 ] || { echo "FAIL: cold run wrote nothing through to the plane"; exit 1; }
[ "$ENTRIES" -ge 1 ] || { echo "FAIL: plane holds no entries after the cold run"; exit 1; }
echo "cold run populated the plane ($ENTRIES entries, $PUTS puts)"

# ---- Fresh: a second machine replays purely from the plane ------------
# Fresh cache dir, so nothing is local; -require-cached exits non-zero
# unless every job replays. If any shard recomputed, the write-through
# would bump puts/dup_puts — both must stay flat.
DUPS0=$(stat_of "$PADDR" dup_puts); DUPS0=${DUPS0:-0}
"$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers 4 -quiet \
    -plane "$PADDR" -cache-dir "$WORK/cacheB" -require-cached > "$WORK/fresh.txt" || {
    echo "FAIL: fresh-cache run was not served entirely by the plane"; exit 1; }
diff -u "$WORK/local.norm" <(norm "$WORK/fresh.txt") || {
    echo "FAIL: plane-replayed report diverged from local"; exit 1; }
PUTS1=$(stat_of "$PADDR" puts); PUTS1=${PUTS1:-0}
DUPS1=$(stat_of "$PADDR" dup_puts); DUPS1=${DUPS1:-0}
HITS1=$(stat_of "$PADDR" hits); HITS1=${HITS1:-0}
[ "$PUTS1" -eq "$PUTS" ] && [ "$DUPS1" -eq "$DUPS0" ] || {
    echo "FAIL: fresh run recomputed (puts $PUTS->$PUTS1, dup_puts $DUPS0->$DUPS1)"; exit 1; }
[ "$HITS1" -ge 1 ] || { echo "FAIL: fresh run never hit the plane"; exit 1; }
echo "fresh -cache-dir passed -require-cached purely from the plane ($HITS1 hits, zero recomputation)"

# ---- Worker: a plane-attached pull worker recomputes nothing ----------
"$WORK/dramlockerd" -broker -addr 127.0.0.1:0 -name rpbroker >"$WORK/broker.log" 2>&1 &
BROKER_PID=$!; PIDS+=("$BROKER_PID")
BADDR=$(wait_addr "$WORK/broker.log" "$BROKER_PID")
"$WORK/dramlockerd" -pull "$BADDR" -plane "$PADDR" -preset tiny -name planeworker \
    >"$WORK/worker.log" 2>&1 &
WORKER_PID=$!; PIDS+=("$WORKER_PID")

"$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers 4 -quiet -broker "$BADDR" \
    -no-cache > "$WORK/queue.txt"
diff -u "$WORK/local.norm" <(norm "$WORK/queue.txt") || {
    echo "FAIL: plane-worker queue report diverged from local"; exit 1; }
PUTS2=$(stat_of "$PADDR" puts); PUTS2=${PUTS2:-0}
DUPS2=$(stat_of "$PADDR" dup_puts); DUPS2=${DUPS2:-0}
HITS2=$(stat_of "$PADDR" hits); HITS2=${HITS2:-0}
[ "$PUTS2" -eq "$PUTS" ] && [ "$DUPS2" -eq "$DUPS0" ] || {
    echo "FAIL: plane-attached worker recomputed (puts $PUTS->$PUTS2, dup_puts $DUPS0->$DUPS2)"; exit 1; }
[ "$HITS2" -gt "$HITS1" ] || { echo "FAIL: worker never fetched from the plane"; exit 1; }
echo "pull worker served the queue run from the plane ($((HITS2 - HITS1)) fetches, zero recomputation)"

kill "$WORKER_PID" 2>/dev/null; wait "$WORKER_PID" 2>/dev/null || true
kill "$BROKER_PID" 2>/dev/null; wait "$BROKER_PID" 2>/dev/null || true
kill "$PLANE_PID" 2>/dev/null; wait "$PLANE_PID" 2>/dev/null || true

# ---- Co-host: broker completes a job with zero leases -----------------
# The broker co-hosts the plane over the same directory (replaying the
# entries the cold run persisted) and no worker ever registers: the only
# way the job can finish is the submit-time plane prefetch.
"$WORK/dramlockerd" -broker -result-plane -plane-dir "$PDIR" -addr 127.0.0.1:0 \
    -name cobroker >"$WORK/cohost.log" 2>&1 &
COHOST_PID=$!; PIDS+=("$COHOST_PID")
CADDR=$(wait_addr "$WORK/cohost.log" "$COHOST_PID")
grep -q "co-hosting result plane" "$WORK/cohost.log" || {
    echo "FAIL: broker did not co-host the plane:"; cat "$WORK/cohost.log"; exit 1; }
echo "co-hosted broker up on $CADDR ($(sed -nE 's/.*co-hosting result plane \((.*)\).*/\1/p' "$WORK/cohost.log" | head -n1))"

"$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers 4 -quiet -broker "$CADDR" \
    -no-cache > "$WORK/cohost.txt" &
RUN_PID=$!
for i in $(seq 1 600); do
    kill -0 "$RUN_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$RUN_PID" 2>/dev/null; then
    echo "FAIL: workerless run against the co-hosted broker did not finish (plane miss?)"
    stat_of "$CADDR" plane_hits || true
    exit 1
fi
wait "$RUN_PID" || { echo "FAIL: workerless co-host run failed"; cat "$WORK/cohost.txt"; exit 1; }
RUN_PID=""
diff -u "$WORK/local.norm" <(norm "$WORK/cohost.txt") || {
    echo "FAIL: co-host plane report diverged from local"; exit 1; }

PLANE_HITS=$(stat_of "$CADDR" plane_hits); PLANE_HITS=${PLANE_HITS:-0}
SUBMITTED=$(stat_of "$CADDR" submitted); SUBMITTED=${SUBMITTED:-0}
COMPLETED=$(stat_of "$CADDR" completed); COMPLETED=${COMPLETED:-0}
WORKERS=$(stat_of "$CADDR" workers); WORKERS=${WORKERS:-0}
LEASED=$(stat_of "$CADDR" leased); LEASED=${LEASED:-0}
[ "$SUBMITTED" -ge 1 ] && [ "$COMPLETED" -eq "$SUBMITTED" ] || {
    echo "FAIL: co-host broker completed $COMPLETED of $SUBMITTED tasks"; exit 1; }
[ "$PLANE_HITS" -eq "$COMPLETED" ] || {
    echo "FAIL: only $PLANE_HITS of $COMPLETED completions came from the plane"; exit 1; }
[ "$WORKERS" -eq 0 ] && [ "$LEASED" -eq 0 ] || {
    echo "FAIL: workerless leg had workers=$WORKERS leased=$LEASED"; exit 1; }
echo "co-hosted broker completed all $COMPLETED task(s) from the plane with zero leases"
kill "$COHOST_PID" 2>/dev/null; wait "$COHOST_PID" 2>/dev/null || true

echo "e2e-resultplane: OK"
