#!/usr/bin/env bash
# Loopback end-to-end gate for the remote executors (make e2e-remote).
#
# Proves the transport-independence guarantee on real daemons, for both
# distributed topologies:
#
#   push:  a tiny preset run dispatched to dramlockerd over 127.0.0.1
#          (-remote) must render the same report as the in-process pool
#          at workers 1 and 4 (modulo timings, normalised exactly like
#          CI's cold/warm cache gate), and a warm re-run over the shared
#          -cache-dir must replay 100% from cache without touching the
#          daemon (-require-cached).
#   queue: the same runs submitted through a dramlockerd -broker job
#          queue (-broker), served by a registered pull worker
#          (dramlockerd -pull), must be byte-identical too — same
#          normalisation, same worker counts, same warm replay gate.
#   crash: a journaled broker (-journal-dir) is SIGKILLed mid-run and
#          restarted on the same address; the run must survive on the
#          replayed backlog, the report must stay byte-identical to
#          local, and any re-executed in-flight work must surface as
#          byte-identical duplicate cache hits.
set -euo pipefail

cd "$(dirname "$0")/.."

EXPS=fig1b,mc,table1,fig7a,fig7b,defense
WORK=$(mktemp -d)
DAEMON_PID=""
BROKER_PID=""
PULL_PID=""
CRASH_PID=""
PULL2_PID=""
RUN_PID=""
cleanup() {
    for pid in "$DAEMON_PID" "$BROKER_PID" "$PULL_PID" "$CRASH_PID" "$PULL2_PID" "$RUN_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/dramlocker" ./cmd/dramlocker
go build -o "$WORK/dramlockerd" ./cmd/dramlockerd

# Port 0 lets the kernel pick a free port; the daemon binds before it
# logs, so the "serving ... on host:port" line is also the ready signal.
"$WORK/dramlockerd" -addr 127.0.0.1:0 -preset tiny >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

ADDR=""
for i in $(seq 1 100); do
    ADDR=$(sed -nE 's/.* on (127\.0\.0\.1:[0-9]+) .*/\1/p' "$WORK/daemon.log" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { echo "daemon died:"; cat "$WORK/daemon.log"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "daemon never came up:"; cat "$WORK/daemon.log"; exit 1; }
echo "daemon up on $ADDR"

# Strip the per-job timing parenthetical and the summary line — the same
# normalisation as CI's cache gate; everything else must match byte for
# byte.
norm() { sed -E 's/^(=== .*) \([^)]*\)( ===)$/\1\2/; /^[0-9]+ jobs, /d' "$1"; }

run_local()  { "$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers "$1" -quiet; }
run_remote() { "$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers "$1" -quiet -remote "$ADDR" "${@:2}"; }

for w in 1 4; do
    run_local  "$w" > "$WORK/local$w.txt"
    run_remote "$w" > "$WORK/remote$w.txt"
    norm "$WORK/local$w.txt"  > "$WORK/local$w.norm"
    norm "$WORK/remote$w.txt" > "$WORK/remote$w.norm"
    if ! diff -u "$WORK/local$w.norm" "$WORK/remote$w.norm"; then
        echo "FAIL: remote report diverged from local at workers=$w"
        exit 1
    fi
    echo "workers=$w: remote report byte-identical to local"
done

# Cache-hit replay across the transport: cold remote run populates the
# disk cache, the warm run must serve 100% from it (still via -remote —
# replay happens scheduler-side, before any dispatch).
run_remote 4 -cache-dir "$WORK/rescache" > "$WORK/cold.txt"
run_remote 4 -cache-dir "$WORK/rescache" -require-cached > "$WORK/warm.txt"
norm "$WORK/cold.txt" > "$WORK/cold.norm"
norm "$WORK/warm.txt" > "$WORK/warm.norm"
diff -u "$WORK/cold.norm" "$WORK/warm.norm"
echo "warm -remote run replayed 100% from cache ($(wc -l < "$WORK/rescache/results.jsonl") entries)"

# ---- Queue (broker) topology ------------------------------------------
# Same guarantee through the pull-based job queue: a broker that holds no
# registry, one registered pull worker that does, and the scheduler
# submitting over -broker.
"$WORK/dramlockerd" -broker -addr 127.0.0.1:0 >"$WORK/broker.log" 2>&1 &
BROKER_PID=$!

BADDR=""
for i in $(seq 1 100); do
    BADDR=$(sed -nE 's/.* brokering on (127\.0\.0\.1:[0-9]+) .*/\1/p' "$WORK/broker.log" | head -n1)
    [ -n "$BADDR" ] && break
    kill -0 "$BROKER_PID" 2>/dev/null || { echo "broker died:"; cat "$WORK/broker.log"; exit 1; }
    sleep 0.1
done
[ -n "$BADDR" ] || { echo "broker never came up:"; cat "$WORK/broker.log"; exit 1; }
echo "broker up on $BADDR"

"$WORK/dramlockerd" -pull "$BADDR" -preset tiny -name pull1 >"$WORK/pull.log" 2>&1 &
PULL_PID=$!

run_queue() { "$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers "$1" -quiet -broker "$BADDR" "${@:2}"; }

for w in 1 4; do
    run_queue "$w" > "$WORK/queue$w.txt"
    norm "$WORK/queue$w.txt" > "$WORK/queue$w.norm"
    if ! diff -u "$WORK/local$w.norm" "$WORK/queue$w.norm"; then
        echo "FAIL: queue report diverged from local at workers=$w"
        exit 1
    fi
    echo "workers=$w: queue report byte-identical to local"
done

# Warm replay through the broker: the scheduler-side cache short-circuits
# before any submission, so the gate passes even with the queue in front.
run_queue 4 -cache-dir "$WORK/qcache" > "$WORK/qcold.txt"
run_queue 4 -cache-dir "$WORK/qcache" -require-cached > "$WORK/qwarm.txt"
norm "$WORK/qcold.txt" > "$WORK/qcold.norm"
norm "$WORK/qwarm.txt" > "$WORK/qwarm.norm"
diff -u "$WORK/qcold.norm" "$WORK/qwarm.norm"
echo "warm -broker run replayed 100% from cache ($(wc -l < "$WORK/qcache/results.jsonl") entries)"

# ---- Crash recovery (journaled broker) --------------------------------
# SIGKILL a -journal-dir broker mid-run, restart it on the same address
# over the same journal, and require the run to finish byte-identical to
# local: no shard lost (the diff catches a zero-run), no shard counted
# twice (re-executed in-flight work must report as byte-identical
# duplicate cache hits, which the report never sees).
#
# Ordering makes the kill deterministic: the scheduler submits against a
# broker with NO worker attached, so the backlog only accumulates (the
# tiny preset finishes in tens of milliseconds once a worker serves it —
# far too fast to reliably interrupt). The kill lands after submissions
# are journaled but before anything can complete; the worker joins only
# after the restart and drains the replayed backlog.
JDIR="$WORK/journal"

# stat_of ADDR FIELD pulls one integer out of `dramlocker -stats -json`
# (the same GET /v2/metrics the operator CLI uses).
stat_of() {
    "$WORK/dramlocker" -broker "$1" -stats -json 2>/dev/null \
        | sed -nE "s/.*\"$2\": ([0-9]+).*/\1/p" | head -n1
}

start_crash_broker() { # addr logfile
    "$WORK/dramlockerd" -broker -addr "$1" -journal-dir "$JDIR" -name crashbroker >"$2" 2>&1 &
    CRASH_PID=$!
}

start_crash_broker 127.0.0.1:0 "$WORK/crash1.log"
CADDR=""
for i in $(seq 1 100); do
    CADDR=$(sed -nE 's/.* brokering on (127\.0\.0\.1:[0-9]+) .*/\1/p' "$WORK/crash1.log" | head -n1)
    [ -n "$CADDR" ] && break
    kill -0 "$CRASH_PID" 2>/dev/null || { echo "crash-leg broker died:"; cat "$WORK/crash1.log"; exit 1; }
    sleep 0.1
done
[ -n "$CADDR" ] || { echo "crash-leg broker never came up:"; cat "$WORK/crash1.log"; exit 1; }
echo "journaled broker up on $CADDR (journal $JDIR)"

"$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers 4 -quiet -broker "$CADDR" > "$WORK/crash.txt" &
RUN_PID=$!

# Wait until the backlog holds journaled (fsynced-before-ack)
# submissions, then pull the plug.
SUBMITTED=0
for i in $(seq 1 200); do
    SUBMITTED=$(stat_of "$CADDR" submitted)
    SUBMITTED=${SUBMITTED:-0}
    [ "$SUBMITTED" -ge 1 ] && break
    kill -0 "$RUN_PID" 2>/dev/null || { echo "FAIL: run exited with no worker attached:"; cat "$WORK/crash.txt"; exit 1; }
    sleep 0.05
done
[ "$SUBMITTED" -ge 1 ] || { echo "FAIL: no submission reached the broker before the kill window closed"; exit 1; }
kill -9 "$CRASH_PID" 2>/dev/null
wait "$CRASH_PID" 2>/dev/null || true
sleep 0.3
kill -0 "$RUN_PID" 2>/dev/null || { echo "FAIL: scheduler exited when the broker was killed"; cat "$WORK/crash.txt"; exit 1; }
echo "broker SIGKILLed with $SUBMITTED task(s) journaled; scheduler still running"

# Restart over the same journal on the same address (retrying while the
# old socket drains). The replay log line is the recovery receipt.
CRASH_PID=""
for i in $(seq 1 50); do
    start_crash_broker "$CADDR" "$WORK/crash2.log"
    for j in $(seq 1 50); do
        grep -q "brokering on" "$WORK/crash2.log" && break
        kill -0 "$CRASH_PID" 2>/dev/null || break
        sleep 0.1
    done
    grep -q "brokering on" "$WORK/crash2.log" && break
    sleep 0.2
done
grep -q "brokering on" "$WORK/crash2.log" || { echo "restarted broker never came up:"; cat "$WORK/crash2.log"; exit 1; }
grep -q "journal .* replayed" "$WORK/crash2.log" || { echo "FAIL: restarted broker logged no journal replay:"; cat "$WORK/crash2.log"; exit 1; }
echo "broker restarted on $CADDR: $(grep 'replayed' "$WORK/crash2.log" | head -n1)"

# Only now does a worker join — it drains the backlog the journal saved.
"$WORK/dramlockerd" -pull "$CADDR" -preset tiny -name pull2 >"$WORK/pull2.log" 2>&1 &
PULL2_PID=$!

if ! wait "$RUN_PID"; then
    echo "FAIL: run did not survive the broker crash"
    cat "$WORK/crash.txt"
    exit 1
fi
RUN_PID=""
norm "$WORK/crash.txt" > "$WORK/crash.norm"
if ! diff -u "$WORK/local4.norm" "$WORK/crash.norm"; then
    echo "FAIL: crash-recovered report diverged from local"
    exit 1
fi

# In-flight work at kill time may run twice (the lease record is the
# unsynced journal tier), but determinism demands every duplicate be
# byte-identical to the recorded winner.
DUPS=$(stat_of "$CADDR" duplicates); DUPS=${DUPS:-0}
HITS=$(stat_of "$CADDR" dup_cache_hits); HITS=${HITS:-0}
if [ "$DUPS" != "$HITS" ]; then
    echo "FAIL: $DUPS duplicate result(s) but only $HITS byte-identical ($((DUPS - HITS)) diverged)"
    exit 1
fi
echo "crash recovery: report byte-identical to local ($DUPS duplicate(s), all byte-identical cache hits)"

echo "e2e-remote: OK"
