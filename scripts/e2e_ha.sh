#!/usr/bin/env bash
# Broker high-availability gate (make e2e-ha).
#
# Proves the primary/standby pair survives the failure the journal alone
# cannot: the primary's *host* dies, journal and all. Three legs:
#
#   promote:  a journaled primary accumulates a live backlog with a hot
#             standby replicating it over /v2/replicate. The primary is
#             SIGKILLed mid-run, the operator promotes the standby
#             (dramlocker -promote), and the scheduler and a late worker
#             — both holding the full broker list with the dead primary
#             first — fail over on their own. The report must come out
#             byte-identical to a local run; the audit requires every
#             submitted task completed, no skipped replication entries,
#             and duplicate results all byte-identical (dup cache hits).
#   fence:    the dead primary rises again over its own journal on its
#             old address, still believing it is a primary at epoch 1.
#             The new primary's fencer is still retrying; its fence must
#             land, flip the zombie to a read-only replica (journaled,
#             so it survives further restarts), and a late mutation
#             posted straight at the zombie must be refused with the
#             typed not_leader error naming the new primary.
#   silence:  a fresh pair with -takeover-after 1.5s and a worker
#             attached from the start (dones delayed by a fault plan so
#             leases are in flight). The primary is SIGKILLed and nobody
#             promotes: the standby must notice the silence, promote
#             itself, requeue the dead primary's leases, and finish the
#             run to the same byte-identical report.
set -euo pipefail

cd "$(dirname "$0")/.."

EXPS=fig1b,mc,table1,fig7a,fig7b,defense
WORK=$(mktemp -d)
PIDS=()
RUN_PID=""
cleanup() {
    for pid in "${PIDS[@]}" "$RUN_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/dramlocker" ./cmd/dramlocker
go build -o "$WORK/dramlockerd" ./cmd/dramlockerd

norm() { sed -E 's/^(=== .*) \([^)]*\)( ===)$/\1\2/; /^[0-9]+ jobs, /d' "$1"; }

# wait_addr LOGFILE PID: block until the daemon logs its bound address.
wait_addr() {
    local addr=""
    for i in $(seq 1 100); do
        addr=$(sed -nE 's/.* on (127\.0\.0\.1:[0-9]+) .*/\1/p' "$1" | head -n1)
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        kill -0 "$2" 2>/dev/null || break
        sleep 0.1
    done
    echo "daemon never came up:" >&2; cat "$1" >&2; return 1
}

# stat_of ADDR FIELD: one integer out of `dramlocker -stats -json`.
stat_of() {
    "$WORK/dramlocker" -broker "$1" -stats -json 2>/dev/null \
        | sed -nE "s/.*\"$2\": ([0-9]+).*/\1/p" | head -n1
}

# role_of ADDR: the broker's HA role string.
role_of() {
    "$WORK/dramlocker" -broker "$1" -stats -json 2>/dev/null \
        | sed -nE 's/.*"role": "([a-z]+)".*/\1/p' | head -n1
}

# wait_stat ADDR FIELD MIN TRIES: poll until the counter reaches MIN.
wait_stat() {
    local v=0
    for i in $(seq 1 "$4"); do
        v=$(stat_of "$1" "$2"); v=${v:-0}
        [ "$v" -ge "$3" ] && { echo "$v"; return 0; }
        sleep 0.05
    done
    echo "${v:-0}"
    return 1
}

# wait_caught_up PRIMARY STANDBY: block until the standby has replicated
# every task the primary has admitted (equal `submitted` counters).
wait_caught_up() {
    local ps=0 ss=0
    for i in $(seq 1 200); do
        ps=$(stat_of "$1" submitted); ps=${ps:-0}
        ss=$(stat_of "$2" submitted); ss=${ss:-0}
        if [ "$ps" -ge 1 ] && [ "$ss" -eq "$ps" ]; then echo "$ps"; return 0; fi
        sleep 0.05
    done
    echo "standby never caught up (primary $ps, standby $ss)" >&2
    return 1
}

"$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers 4 -quiet > "$WORK/local.txt"
norm "$WORK/local.txt" > "$WORK/local.norm"

# ---- Leg 1: SIGKILL the primary, promote by hand ----------------------
JA="$WORK/journal-a"
SA="$WORK/journal-sa"
"$WORK/dramlockerd" -broker -addr 127.0.0.1:0 -name primary1 \
    -journal-dir "$JA" -lease-ttl 2s >"$WORK/primary1.log" 2>&1 &
PRIMARY1_PID=$!; PIDS+=("$PRIMARY1_PID")
PADDR=$(wait_addr "$WORK/primary1.log" "$PRIMARY1_PID")

"$WORK/dramlockerd" -broker -addr 127.0.0.1:0 -name standby1 \
    -journal-dir "$SA" -lease-ttl 2s -follow "$PADDR" >"$WORK/standby1.log" 2>&1 &
STANDBY1_PID=$!; PIDS+=("$STANDBY1_PID")
SADDR=$(wait_addr "$WORK/standby1.log" "$STANDBY1_PID")
grep -q "standby following" "$WORK/standby1.log" || {
    echo "FAIL: standby1 did not start in follower mode"; cat "$WORK/standby1.log"; exit 1; }
echo "pair up: primary $PADDR, standby $SADDR (replicating)"

# The scheduler gets the full list. No worker is serving yet, so the
# backlog pools on the primary and streams to the standby.
"$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers 4 -quiet \
    -broker "$PADDR,$SADDR" > "$WORK/ha1.txt" &
RUN_PID=$!

REPLICATED=$(wait_caught_up "$PADDR" "$SADDR") || exit 1
echo "standby caught up: $REPLICATED task(s) replicated"

kill -9 "$PRIMARY1_PID" 2>/dev/null
wait "$PRIMARY1_PID" 2>/dev/null || true
echo "primary SIGKILLed with a live backlog"

"$WORK/dramlocker" -broker "$SADDR" -promote > "$WORK/promote.txt"
grep -q "promoted to primary at epoch 2" "$WORK/promote.txt" || {
    echo "FAIL: promote receipt wrong:"; cat "$WORK/promote.txt"; exit 1; }
[ "$(role_of "$SADDR")" = "primary" ] || { echo "FAIL: standby did not become primary"; exit 1; }

# The worker arrives only now, dead primary first in its list: hello
# must fail over to the new primary on its own.
"$WORK/dramlockerd" -pull "$PADDR,$SADDR" -preset tiny -name haworker1 -capacity 4 \
    >"$WORK/haworker1.log" 2>&1 &
WORKER1_PID=$!; PIDS+=("$WORKER1_PID")

if ! wait "$RUN_PID"; then
    echo "FAIL: run did not survive the takeover"; cat "$WORK/ha1.txt"; exit 1
fi
RUN_PID=""
if ! diff -u "$WORK/local.norm" <(norm "$WORK/ha1.txt"); then
    echo "FAIL: post-takeover report diverged from local"; exit 1
fi
echo "report byte-identical to local across the takeover"

# Audit: nothing lost, nothing double-counted. Every admitted task
# completed on the new primary; the replication stream applied cleanly
# (no skipped entries); any duplicate results were byte-identical.
SUBMITTED=$(stat_of "$SADDR" submitted); SUBMITTED=${SUBMITTED:-0}
COMPLETED=$(stat_of "$SADDR" completed); COMPLETED=${COMPLETED:-0}
APPLIED=$(stat_of "$SADDR" applied); APPLIED=${APPLIED:-0}
SKIPPED_R=$(stat_of "$SADDR" skipped); SKIPPED_R=${SKIPPED_R:-0}
DUPS=$(stat_of "$SADDR" duplicates); DUPS=${DUPS:-0}
DUP_HITS=$(stat_of "$SADDR" dup_cache_hits); DUP_HITS=${DUP_HITS:-0}
EPOCH=$(stat_of "$SADDR" epoch); EPOCH=${EPOCH:-0}
[ "$SUBMITTED" -ge 1 ] && [ "$COMPLETED" -eq "$SUBMITTED" ] || {
    echo "FAIL: backlog not drained (submitted=$SUBMITTED completed=$COMPLETED)"; exit 1; }
[ "$APPLIED" -ge "$REPLICATED" ] || { echo "FAIL: replication applied only $APPLIED entries"; exit 1; }
[ "$SKIPPED_R" -eq 0 ] || { echo "FAIL: $SKIPPED_R replicated entries were skipped"; exit 1; }
[ "$DUPS" -eq "$DUP_HITS" ] || { echo "FAIL: $DUPS duplicate results, only $DUP_HITS byte-identical"; exit 1; }
[ "$EPOCH" -eq 2 ] || { echo "FAIL: new primary at epoch $EPOCH, want 2"; exit 1; }
echo "audit: submitted=$SUBMITTED completed=$COMPLETED applied=$APPLIED skipped=0 dups=$DUPS epoch=$EPOCH"
kill "$WORKER1_PID" 2>/dev/null; wait "$WORKER1_PID" 2>/dev/null || true

# ---- Leg 2: the zombie rises and is fenced ----------------------------
# Restart leg 1's dead primary over its own journal on its old address.
# It replays and believes it is a primary at epoch 1 — until standby1's
# still-retrying fencer reaches it.
"$WORK/dramlockerd" -broker -addr "$PADDR" -name zombie1 \
    -journal-dir "$JA" -lease-ttl 2s >"$WORK/zombie1.log" 2>&1 &
ZOMBIE_PID=$!; PIDS+=("$ZOMBIE_PID")
wait_addr "$WORK/zombie1.log" "$ZOMBIE_PID" >/dev/null

FENCED=""
for i in $(seq 1 200); do
    if [ "$(role_of "$PADDR")" = "fenced" ]; then FENCED=1; break; fi
    sleep 0.1
done
[ -n "$FENCED" ] || { echo "FAIL: zombie was never fenced:"; cat "$WORK/zombie1.log"; exit 1; }
grep -q "fenced ex-primary" "$WORK/standby1.log" || {
    echo "FAIL: fencer logged no success:"; tail -n5 "$WORK/standby1.log"; exit 1; }
echo "zombie fenced at epoch $(stat_of "$PADDR" epoch)"

# A late mutation aimed straight at the zombie: refused with the typed
# retryable error, redirect and Retry-After floor included.
REFUSAL=$(curl -s -D "$WORK/refuse.hdr" -X POST "http://$PADDR/v2/submit" \
    -H 'Content-Type: application/json' \
    -d '{"proto":"dlexec2","tasks":[{"proto":"dlexec2","job":"late","shard":0,"seed":7,"key":"late@hash"}]}')
echo "$REFUSAL" | grep -q '"code": *"not_leader"' || {
    echo "FAIL: zombie accepted (or mis-refused) a late mutation: $REFUSAL"; exit 1; }
echo "$REFUSAL" | grep -q "\"primary\": *\"$SADDR\"" || {
    echo "FAIL: refusal does not name the new primary: $REFUSAL"; exit 1; }
grep -qi '^Retry-After:' "$WORK/refuse.hdr" || {
    echo "FAIL: refusal carries no Retry-After header"; exit 1; }
echo "late mutation refused: typed not_leader pointing at $SADDR"

# The fence is durable: restart the zombie once more and it must come
# back fenced without anyone telling it again.
kill "$ZOMBIE_PID" 2>/dev/null; wait "$ZOMBIE_PID" 2>/dev/null || true
"$WORK/dramlockerd" -broker -addr "$PADDR" -name zombie2 \
    -journal-dir "$JA" >"$WORK/zombie2.log" 2>&1 &
ZOMBIE2_PID=$!; PIDS+=("$ZOMBIE2_PID")
wait_addr "$WORK/zombie2.log" "$ZOMBIE2_PID" >/dev/null
[ "$(role_of "$PADDR")" = "fenced" ] || {
    echo "FAIL: fence did not survive the zombie's restart"; exit 1; }
echo "fence survived a further restart (journaled epoch)"
kill "$ZOMBIE2_PID" 2>/dev/null; wait "$ZOMBIE2_PID" 2>/dev/null || true
kill "$STANDBY1_PID" 2>/dev/null; wait "$STANDBY1_PID" 2>/dev/null || true

# ---- Leg 3: silence-timeout takeover with leases in flight ------------
cat > "$WORK/slow.json" <<'EOF'
{
  "seed": 99,
  "rules": [
    {"point": "server.done", "kind": "delay", "delay_ms": 400, "count": 50}
  ]
}
EOF
JB="$WORK/journal-b"
SB="$WORK/journal-sb"
"$WORK/dramlockerd" -broker -addr 127.0.0.1:0 -name primary2 \
    -journal-dir "$JB" -lease-ttl 2s \
    -fault-plan "$WORK/slow.json" -allow-faults >"$WORK/primary2.log" 2>&1 &
PRIMARY2_PID=$!; PIDS+=("$PRIMARY2_PID")
PADDR2=$(wait_addr "$WORK/primary2.log" "$PRIMARY2_PID")

"$WORK/dramlockerd" -broker -addr 127.0.0.1:0 -name standby2 \
    -journal-dir "$SB" -lease-ttl 2s -follow "$PADDR2" -takeover-after 1.5s \
    >"$WORK/standby2.log" 2>&1 &
STANDBY2_PID=$!; PIDS+=("$STANDBY2_PID")
SADDR2=$(wait_addr "$WORK/standby2.log" "$STANDBY2_PID")
echo "pair up: primary $PADDR2, standby $SADDR2 (takeover-after 1.5s)"

"$WORK/dramlockerd" -pull "$PADDR2,$SADDR2" -preset tiny -name haworker2 -capacity 2 \
    >"$WORK/haworker2.log" 2>&1 &
WORKER2_PID=$!; PIDS+=("$WORKER2_PID")

"$WORK/dramlocker" -preset tiny -exp "$EXPS" -workers 4 -quiet \
    -broker "$PADDR2,$SADDR2" > "$WORK/ha2.txt" &
RUN_PID=$!

# Kill the primary the moment a lease is out (every done is delayed
# 400ms, so the lease cannot have reported yet) and the standby has the
# backlog. Nobody promotes: the silence timer must.
if ! wait_stat "$PADDR2" leased 1 200 >/dev/null; then
    echo "FAIL: worker never leased a task on primary2"; exit 1
fi
wait_caught_up "$PADDR2" "$SADDR2" >/dev/null || exit 1
kill -9 "$PRIMARY2_PID" 2>/dev/null
wait "$PRIMARY2_PID" 2>/dev/null || true
echo "primary2 SIGKILLed with leases in flight; waiting on the silence timer"

TAKEOVER_OK=""
for i in $(seq 1 200); do
    if grep -q "promoted to primary at epoch 2 (primary silent for" "$WORK/standby2.log"; then
        TAKEOVER_OK=1; break
    fi
    sleep 0.1
done
[ -n "$TAKEOVER_OK" ] || { echo "FAIL: standby2 never self-promoted:"; cat "$WORK/standby2.log"; exit 1; }
echo "standby2 self-promoted: $(grep -o 'promoted to primary at epoch 2 ([^)]*)' "$WORK/standby2.log" | head -n1)"

if ! wait "$RUN_PID"; then
    echo "FAIL: run did not survive the silent takeover"; cat "$WORK/ha2.txt"; exit 1
fi
RUN_PID=""
if ! diff -u "$WORK/local.norm" <(norm "$WORK/ha2.txt"); then
    echo "FAIL: silent-takeover report diverged from local"; exit 1
fi
COMPLETED2=$(stat_of "$SADDR2" completed); COMPLETED2=${COMPLETED2:-0}
SUBMITTED2=$(stat_of "$SADDR2" submitted); SUBMITTED2=${SUBMITTED2:-0}
[ "$SUBMITTED2" -ge 1 ] && [ "$COMPLETED2" -eq "$SUBMITTED2" ] || {
    echo "FAIL: leg-3 backlog not drained (submitted=$SUBMITTED2 completed=$COMPLETED2)"; exit 1; }
echo "silent takeover drained the backlog (submitted=$SUBMITTED2 completed=$COMPLETED2)"
kill "$WORKER2_PID" 2>/dev/null; wait "$WORKER2_PID" 2>/dev/null || true
kill "$STANDBY2_PID" 2>/dev/null; wait "$STANDBY2_PID" 2>/dev/null || true

echo "e2e-ha: OK"
