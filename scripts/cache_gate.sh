#!/usr/bin/env bash
# Persistent result cache gate (make cache-gate; CI runs exactly this).
#
# A cold tiny-preset run populates the on-disk result cache, then a warm
# run must serve 100% of the jobs from it (-require-cached exits
# non-zero otherwise) and render a byte-identical report once the
# per-job timing parenthetical and the jobs-summary line are stripped —
# the same normalisation as scripts/e2e_remote.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

EXPS=fig1b,mc,table1,fig7a,fig7b,defense
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/dramlocker" ./cmd/dramlocker

"$WORK/dramlocker" -preset tiny -exp "$EXPS" -cache-dir "$WORK/rescache" -quiet > "$WORK/cold.txt"
"$WORK/dramlocker" -preset tiny -exp "$EXPS" -cache-dir "$WORK/rescache" -quiet -require-cached > "$WORK/warm.txt"

# Strip only the per-job timing header parenthetical and the
# jobs-summary line; everything else (including parenthesized table
# payloads) must match byte for byte.
norm() { sed -E 's/^(=== .*) \([^)]*\)( ===)$/\1\2/; /^[0-9]+ jobs, /d' "$1"; }
norm "$WORK/cold.txt" > "$WORK/cold.norm"
norm "$WORK/warm.txt" > "$WORK/warm.norm"
if ! diff -u "$WORK/cold.norm" "$WORK/warm.norm"; then
    echo "FAIL: warm cached report diverged from the cold run"
    exit 1
fi
echo "cache-gate: warm run served everything from cache ($(wc -l < "$WORK/rescache/results.jsonl") entries)"
